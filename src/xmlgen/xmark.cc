#include "xmlgen/xmark.h"

#include <array>
#include <cmath>
#include <string>
#include <string_view>

#include "xml/writer.h"

namespace sj::xmlgen {
namespace {

// Per-MB element rates, calibrated against Table 1 of the paper (values
// there are for an 1111 MB instance with 50,844,982 nodes):
//   profile: 127,984/1111 = 115.2/MB, education = 63,793 (49.8% of profiles),
//   increase = bidder(after nametest) = 597,777/1111 = 538/MB,
//   distinct Q2 ancestors = 706,193 => ~97.6 open_auction/MB (5.5 bid/auct).
constexpr double kPersonsPerMb = 128.0;
constexpr uint32_t kProfilePercent = 90;     // 128 * 0.9 = 115.2 profiles/MB
constexpr uint32_t kEducationPercent = 50;   // of profiles
constexpr double kOpenAuctionsPerMb = 97.6;
constexpr double kClosedAuctionsPerMb = 180.0;
constexpr double kItemsPerMb = 850.0;
constexpr double kCategoriesPerMb = 40.0;
constexpr double kCatgraphEdgesPerMb = 40.0;
constexpr uint32_t kMaxBiddersPerAuction = 11;  // uniform 0..11, mean 5.5
constexpr uint32_t kMaxInterestsPerProfile = 19;  // uniform 0..19, mean 9.5

constexpr std::array<std::string_view, 6> kRegions = {
    "africa", "asia", "australia", "europe", "namerica", "samerica"};

constexpr std::array<std::string_view, 24> kWords = {
    "rusty",   "anchor", "harbor",  "velvet", "ledger", "copper",
    "meadow",  "lantern", "drizzle", "marble", "willow", "ember",
    "saffron", "quartz", "breeze",  "cobble", "tundra", "prairie",
    "onyx",    "juniper", "garnet",  "ripple", "cedar",  "mosaic"};

constexpr std::array<std::string_view, 16> kFirstNames = {
    "Ada",  "Edgar", "Grace", "Alan",  "Barbara", "Donald", "Elena", "Tony",
    "Mina", "Kiri",  "Ivan",  "Sofia", "Ravi",    "Lena",   "Omar",  "Yuki"};

constexpr std::array<std::string_view, 16> kLastNames = {
    "Codd",    "Dijkstra", "Hopper",  "Turing", "Liskov", "Knuth",
    "Meyer",   "Hoare",    "Karp",    "Tarjan", "Rivest", "Blum",
    "Lampson", "Gray",     "Stearns", "Naur"};

/// Emits one pseudo-document; all randomness flows through one Rng so the
/// output is a pure function of (seed, size_mb).
class Generator {
 public:
  Generator(const XMarkOptions& options, xml::EventHandler* out)
      : options_(options),
        out_(out),
        struct_rng_(options.seed),
        text_rng_(options.seed ^ 0x9E3779B97F4A7C15ULL) {}

  Status Run() {
    const double mb = options_.size_mb;
    persons_ = Count(kPersonsPerMb * mb);
    open_auctions_ = Count(kOpenAuctionsPerMb * mb);
    closed_auctions_ = Count(kClosedAuctionsPerMb * mb);
    items_ = Count(kItemsPerMb * mb);
    categories_ = Count(kCategoriesPerMb * mb);
    edges_ = Count(kCatgraphEdgesPerMb * mb);

    SJ_RETURN_NOT_OK(out_->StartDocument());
    SJ_RETURN_NOT_OK(Open("site"));
    SJ_RETURN_NOT_OK(EmitRegions());
    SJ_RETURN_NOT_OK(EmitCategories());
    SJ_RETURN_NOT_OK(EmitCatgraph());
    SJ_RETURN_NOT_OK(EmitPeople());
    SJ_RETURN_NOT_OK(EmitOpenAuctions());
    SJ_RETURN_NOT_OK(EmitClosedAuctions());
    SJ_RETURN_NOT_OK(Close("site"));
    return out_->EndDocument();
  }

 private:
  static uint64_t Count(double expected) {
    return expected < 1.0 ? 1 : static_cast<uint64_t>(std::llround(expected));
  }

  // --- small emission helpers -------------------------------------------

  Status Open(std::string_view tag) { return out_->StartElement(tag); }
  Status Close(std::string_view tag) { return out_->EndElement(tag); }

  Status Attr(std::string_view name, std::string_view value) {
    return out_->Attribute(name, value);
  }

  Status AttrId(std::string_view name, std::string_view prefix, uint64_t id) {
    scratch_ = std::string(prefix) + std::to_string(id);
    return out_->Attribute(name, scratch_);
  }

  /// <tag>text</tag>
  Status TextElement(std::string_view tag, std::string_view text) {
    SJ_RETURN_NOT_OK(Open(tag));
    SJ_RETURN_NOT_OK(out_->Text(text));
    return Close(tag);
  }

  Status TextElementWords(std::string_view tag, int min_words, int max_words) {
    SJ_RETURN_NOT_OK(Open(tag));
    SJ_RETURN_NOT_OK(Words(min_words, max_words));
    return Close(tag);
  }

  /// Emits one text node of `n` pseudo-words.
  Status Words(int min_words, int max_words) {
    if (!options_.rich_text) {
      return out_->Text("t");  // fixed payload: same node count, tiny heap
    }
    uint64_t n = text_rng_.Range(static_cast<uint64_t>(min_words),
                                 static_cast<uint64_t>(max_words));
    scratch_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      if (i > 0) scratch_.push_back(' ');
      scratch_.append(kWords[text_rng_.Below(kWords.size())]);
    }
    return out_->Text(scratch_);
  }

  Status PersonName() {
    if (!options_.rich_text) return out_->Text("p");
    scratch_ =
        std::string(kFirstNames[text_rng_.Below(kFirstNames.size())]) + " " +
        std::string(kLastNames[text_rng_.Below(kLastNames.size())]);
    return out_->Text(scratch_);
  }

  Status Date() {
    if (!options_.rich_text) return out_->Text("d");
    scratch_ = std::to_string(text_rng_.Range(1, 12)) + "/" +
               std::to_string(text_rng_.Range(1, 28)) + "/" +
               std::to_string(text_rng_.Range(1998, 2003));
    return out_->Text(scratch_);
  }

  Status Amount() {
    if (!options_.rich_text) return out_->Text("a");
    scratch_ = std::to_string(text_rng_.Range(1, 5000)) + "." +
               std::to_string(text_rng_.Range(10, 99));
    return out_->Text(scratch_);
  }

  // --- document sections --------------------------------------------------

  /// description -> (text | parlist) with bounded parlist recursion.
  /// `force_deep` drives one maximal-depth chain so that every generated
  /// document has height exactly 11 (site=0 ... keyword text node=11).
  Status Description(uint32_t base_level, bool force_deep) {
    SJ_RETURN_NOT_OK(Open("description"));
    // Depth budget: levels left for parlist/listitem pairs below
    // description such that text(+keyword) still fits within height 11.
    // description sits at base_level; a parlist/listitem pair costs 2.
    uint32_t budget = 0;
    if (base_level + 4 <= 9) budget = (9 - (base_level + 1)) / 2;
    uint32_t depth = 0;
    if (force_deep) {
      depth = budget;
    } else if (budget > 0 && struct_rng_.Percent(35)) {
      depth = static_cast<uint32_t>(struct_rng_.Range(1, budget));
    }
    SJ_RETURN_NOT_OK(DescriptionBody(depth, force_deep));
    return Close("description");
  }

  Status DescriptionBody(uint32_t parlist_depth, bool force_keyword) {
    if (parlist_depth == 0) {
      SJ_RETURN_NOT_OK(Open("text"));
      SJ_RETURN_NOT_OK(Words(8, 30));
      if (force_keyword || struct_rng_.Percent(20)) {
        SJ_RETURN_NOT_OK(TextElementWords("keyword", 1, 3));
      }
      return Close("text");
    }
    SJ_RETURN_NOT_OK(Open("parlist"));
    uint64_t listitems = struct_rng_.Range(1, 2);
    for (uint64_t i = 0; i < listitems; ++i) {
      SJ_RETURN_NOT_OK(Open("listitem"));
      SJ_RETURN_NOT_OK(
          DescriptionBody(parlist_depth - 1, force_keyword && i == 0));
      SJ_RETURN_NOT_OK(Close("listitem"));
    }
    return Close("parlist");
  }

  Status EmitRegions() {
    SJ_RETURN_NOT_OK(Open("regions"));
    uint64_t emitted = 0;
    for (size_t r = 0; r < kRegions.size(); ++r) {
      SJ_RETURN_NOT_OK(Open(kRegions[r]));
      uint64_t quota = items_ / kRegions.size() +
                       (r < items_ % kRegions.size() ? 1 : 0);
      for (uint64_t i = 0; i < quota; ++i, ++emitted) {
        // The very first item carries the forced maximal-depth description.
        SJ_RETURN_NOT_OK(EmitItem(emitted, /*force_deep=*/emitted == 0));
      }
      SJ_RETURN_NOT_OK(Close(kRegions[r]));
    }
    return Close("regions");
  }

  /// item is at level 3 (site/regions/<region>/item); description at 4.
  Status EmitItem(uint64_t id, bool force_deep) {
    SJ_RETURN_NOT_OK(Open("item"));
    SJ_RETURN_NOT_OK(AttrId("id", "item", id));
    if (struct_rng_.Percent(10)) SJ_RETURN_NOT_OK(Attr("featured", "yes"));
    SJ_RETURN_NOT_OK(TextElementWords("location", 1, 2));
    SJ_RETURN_NOT_OK(Open("quantity"));
    SJ_RETURN_NOT_OK(out_->Text(text_rng_.Percent(80) ? "1" : "2"));
    SJ_RETURN_NOT_OK(Close("quantity"));
    SJ_RETURN_NOT_OK(TextElementWords("name", 1, 3));
    SJ_RETURN_NOT_OK(TextElementWords("payment", 2, 6));
    SJ_RETURN_NOT_OK(Description(/*base_level=*/4, force_deep));
    SJ_RETURN_NOT_OK(TextElementWords("shipping", 2, 6));
    uint64_t incategories = struct_rng_.Range(1, 2);
    for (uint64_t i = 0; i < incategories; ++i) {
      SJ_RETURN_NOT_OK(Open("incategory"));
      SJ_RETURN_NOT_OK(
          AttrId("category", "category", text_rng_.Below(categories_)));
      SJ_RETURN_NOT_OK(Close("incategory"));
    }
    if (struct_rng_.Percent(75)) {
      SJ_RETURN_NOT_OK(Open("mailbox"));
      uint64_t mails = struct_rng_.Range(1, 3);
      for (uint64_t i = 0; i < mails; ++i) {
        SJ_RETURN_NOT_OK(Open("mail"));
        SJ_RETURN_NOT_OK(TextElementWords("from", 2, 3));
        SJ_RETURN_NOT_OK(TextElementWords("to", 2, 3));
        SJ_RETURN_NOT_OK(Open("date"));
        SJ_RETURN_NOT_OK(Date());
        SJ_RETURN_NOT_OK(Close("date"));
        SJ_RETURN_NOT_OK(TextElementWords("text", 10, 30));
        SJ_RETURN_NOT_OK(Close("mail"));
      }
      SJ_RETURN_NOT_OK(Close("mailbox"));
    }
    return Close("item");
  }

  Status EmitCategories() {
    SJ_RETURN_NOT_OK(Open("categories"));
    for (uint64_t i = 0; i < categories_; ++i) {
      SJ_RETURN_NOT_OK(Open("category"));
      SJ_RETURN_NOT_OK(AttrId("id", "category", i));
      SJ_RETURN_NOT_OK(TextElementWords("name", 1, 2));
      SJ_RETURN_NOT_OK(Description(/*base_level=*/3, /*force_deep=*/false));
      SJ_RETURN_NOT_OK(Close("category"));
    }
    return Close("categories");
  }

  Status EmitCatgraph() {
    SJ_RETURN_NOT_OK(Open("catgraph"));
    for (uint64_t i = 0; i < edges_; ++i) {
      SJ_RETURN_NOT_OK(Open("edge"));
      SJ_RETURN_NOT_OK(
          AttrId("from", "category", text_rng_.Below(categories_)));
      SJ_RETURN_NOT_OK(AttrId("to", "category", text_rng_.Below(categories_)));
      SJ_RETURN_NOT_OK(Close("edge"));
    }
    return Close("catgraph");
  }

  Status EmitPeople() {
    SJ_RETURN_NOT_OK(Open("people"));
    for (uint64_t i = 0; i < persons_; ++i) {
      SJ_RETURN_NOT_OK(Open("person"));
      SJ_RETURN_NOT_OK(AttrId("id", "person", i));
      SJ_RETURN_NOT_OK(Open("name"));
      SJ_RETURN_NOT_OK(PersonName());
      SJ_RETURN_NOT_OK(Close("name"));
      SJ_RETURN_NOT_OK(TextElementWords("emailaddress", 1, 1));
      if (struct_rng_.Percent(50)) {
        SJ_RETURN_NOT_OK(TextElementWords("phone", 1, 1));
      }
      if (struct_rng_.Percent(40)) {
        SJ_RETURN_NOT_OK(Open("address"));
        SJ_RETURN_NOT_OK(TextElementWords("street", 2, 3));
        SJ_RETURN_NOT_OK(TextElementWords("city", 1, 1));
        SJ_RETURN_NOT_OK(TextElementWords("country", 1, 1));
        SJ_RETURN_NOT_OK(TextElementWords("zipcode", 1, 1));
        SJ_RETURN_NOT_OK(Close("address"));
      }
      if (struct_rng_.Percent(30)) {
        SJ_RETURN_NOT_OK(TextElementWords("homepage", 1, 1));
      }
      if (struct_rng_.Percent(30)) {
        SJ_RETURN_NOT_OK(TextElementWords("creditcard", 1, 1));
      }
      if (struct_rng_.Percent(kProfilePercent)) {
        SJ_RETURN_NOT_OK(EmitProfile());
      }
      if (struct_rng_.Percent(40)) {
        SJ_RETURN_NOT_OK(Open("watches"));
        uint64_t watches = struct_rng_.Range(1, 3);
        for (uint64_t w = 0; w < watches; ++w) {
          SJ_RETURN_NOT_OK(Open("watch"));
          SJ_RETURN_NOT_OK(
              AttrId("open_auction", "open_auction",
                     text_rng_.Below(open_auctions_)));
          SJ_RETURN_NOT_OK(Close("watch"));
        }
        SJ_RETURN_NOT_OK(Close("watches"));
      }
      SJ_RETURN_NOT_OK(Close("person"));
    }
    return Close("people");
  }

  /// profile at level 3 (site/people/person/profile), education at 4.
  /// Non-attribute descendants average ~14.5 (Table 1: 1,849,360/127,984).
  Status EmitProfile() {
    SJ_RETURN_NOT_OK(Open("profile"));
    SJ_RETURN_NOT_OK(AttrId("income", "", text_rng_.Range(9000, 95000)));
    uint64_t interests = struct_rng_.Range(0, kMaxInterestsPerProfile);
    for (uint64_t i = 0; i < interests; ++i) {
      SJ_RETURN_NOT_OK(Open("interest"));
      SJ_RETURN_NOT_OK(
          AttrId("category", "category", text_rng_.Below(categories_)));
      SJ_RETURN_NOT_OK(Close("interest"));
    }
    if (struct_rng_.Percent(kEducationPercent)) {
      SJ_RETURN_NOT_OK(TextElementWords("education", 1, 2));
    }
    if (struct_rng_.Percent(50)) {
      SJ_RETURN_NOT_OK(
          TextElement("gender", text_rng_.Percent(50) ? "male" : "female"));
    }
    SJ_RETURN_NOT_OK(
        TextElement("business", text_rng_.Percent(50) ? "Yes" : "No"));
    if (struct_rng_.Percent(50)) {
      SJ_RETURN_NOT_OK(Open("age"));
      SJ_RETURN_NOT_OK(out_->Text(options_.rich_text
                                      ? std::to_string(text_rng_.Range(18, 90))
                                      : "n"));
      SJ_RETURN_NOT_OK(Close("age"));
    }
    return Close("profile");
  }

  Status EmitOpenAuctions() {
    SJ_RETURN_NOT_OK(Open("open_auctions"));
    for (uint64_t i = 0; i < open_auctions_; ++i) {
      SJ_RETURN_NOT_OK(Open("open_auction"));
      SJ_RETURN_NOT_OK(AttrId("id", "open_auction", i));
      SJ_RETURN_NOT_OK(Open("initial"));
      SJ_RETURN_NOT_OK(Amount());
      SJ_RETURN_NOT_OK(Close("initial"));
      if (struct_rng_.Percent(40)) {
        SJ_RETURN_NOT_OK(Open("reserve"));
        SJ_RETURN_NOT_OK(Amount());
        SJ_RETURN_NOT_OK(Close("reserve"));
      }
      // bidder at level 3, increase at level 4: exactly one per bidder.
      uint64_t bidders = struct_rng_.Range(0, kMaxBiddersPerAuction);
      for (uint64_t b = 0; b < bidders; ++b) {
        SJ_RETURN_NOT_OK(Open("bidder"));
        SJ_RETURN_NOT_OK(Open("date"));
        SJ_RETURN_NOT_OK(Date());
        SJ_RETURN_NOT_OK(Close("date"));
        SJ_RETURN_NOT_OK(Open("personref"));
        SJ_RETURN_NOT_OK(AttrId("person", "person", text_rng_.Below(persons_)));
        SJ_RETURN_NOT_OK(Close("personref"));
        SJ_RETURN_NOT_OK(Open("increase"));
        SJ_RETURN_NOT_OK(Amount());
        SJ_RETURN_NOT_OK(Close("increase"));
        SJ_RETURN_NOT_OK(Close("bidder"));
      }
      SJ_RETURN_NOT_OK(Open("current"));
      SJ_RETURN_NOT_OK(Amount());
      SJ_RETURN_NOT_OK(Close("current"));
      SJ_RETURN_NOT_OK(Open("itemref"));
      SJ_RETURN_NOT_OK(AttrId("item", "item", text_rng_.Below(items_)));
      SJ_RETURN_NOT_OK(Close("itemref"));
      SJ_RETURN_NOT_OK(Open("seller"));
      SJ_RETURN_NOT_OK(AttrId("person", "person", text_rng_.Below(persons_)));
      SJ_RETURN_NOT_OK(Close("seller"));
      SJ_RETURN_NOT_OK(Open("quantity"));
      SJ_RETURN_NOT_OK(out_->Text("1"));
      SJ_RETURN_NOT_OK(Close("quantity"));
      SJ_RETURN_NOT_OK(
          TextElement("type", text_rng_.Percent(70) ? "Regular" : "Featured"));
      SJ_RETURN_NOT_OK(Open("interval"));
      SJ_RETURN_NOT_OK(Open("start"));
      SJ_RETURN_NOT_OK(Date());
      SJ_RETURN_NOT_OK(Close("start"));
      SJ_RETURN_NOT_OK(Open("end"));
      SJ_RETURN_NOT_OK(Date());
      SJ_RETURN_NOT_OK(Close("end"));
      SJ_RETURN_NOT_OK(Close("interval"));
      SJ_RETURN_NOT_OK(Close("open_auction"));
    }
    return Close("open_auctions");
  }

  Status EmitClosedAuctions() {
    SJ_RETURN_NOT_OK(Open("closed_auctions"));
    for (uint64_t i = 0; i < closed_auctions_; ++i) {
      SJ_RETURN_NOT_OK(Open("closed_auction"));
      SJ_RETURN_NOT_OK(Open("seller"));
      SJ_RETURN_NOT_OK(AttrId("person", "person", text_rng_.Below(persons_)));
      SJ_RETURN_NOT_OK(Close("seller"));
      SJ_RETURN_NOT_OK(Open("buyer"));
      SJ_RETURN_NOT_OK(AttrId("person", "person", text_rng_.Below(persons_)));
      SJ_RETURN_NOT_OK(Close("buyer"));
      SJ_RETURN_NOT_OK(Open("itemref"));
      SJ_RETURN_NOT_OK(AttrId("item", "item", text_rng_.Below(items_)));
      SJ_RETURN_NOT_OK(Close("itemref"));
      SJ_RETURN_NOT_OK(Open("price"));
      SJ_RETURN_NOT_OK(Amount());
      SJ_RETURN_NOT_OK(Close("price"));
      SJ_RETURN_NOT_OK(Open("date"));
      SJ_RETURN_NOT_OK(Date());
      SJ_RETURN_NOT_OK(Close("date"));
      SJ_RETURN_NOT_OK(Open("quantity"));
      SJ_RETURN_NOT_OK(out_->Text("1"));
      SJ_RETURN_NOT_OK(Close("quantity"));
      SJ_RETURN_NOT_OK(
          TextElement("type", text_rng_.Percent(70) ? "Regular" : "Featured"));
      SJ_RETURN_NOT_OK(Close("closed_auction"));
    }
    return Close("closed_auctions");
  }

  XMarkOptions options_;
  xml::EventHandler* out_;
  Rng struct_rng_;   // decides which nodes exist (invariant of rich_text)
  Rng text_rng_;     // decides text/attribute payloads only
  std::string scratch_;
  uint64_t persons_ = 0;
  uint64_t open_auctions_ = 0;
  uint64_t closed_auctions_ = 0;
  uint64_t items_ = 0;
  uint64_t categories_ = 0;
  uint64_t edges_ = 0;
};

}  // namespace

Status GenerateXMark(const XMarkOptions& options, xml::EventHandler* handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("GenerateXMark: handler must not be null");
  }
  if (options.size_mb <= 0.0 || options.size_mb > 4096.0) {
    return Status::InvalidArgument("GenerateXMark: size_mb out of (0, 4096]");
  }
  Generator gen(options, handler);
  return gen.Run();
}

Result<std::string> GenerateXMarkText(const XMarkOptions& options) {
  std::string out;
  xml::TextWriter writer(&out);
  Status st = GenerateXMark(options, &writer);
  if (!st.ok()) return st;
  return out;
}

Result<std::unique_ptr<DocTable>> GenerateXMarkDocument(
    const XMarkOptions& options, BuildOptions build_options) {
  if (build_options.expected_nodes == 0) {
    build_options.expected_nodes =
        static_cast<size_t>(options.size_mb * 46000.0);
  }
  DocTableBuilder builder(build_options);
  Status st = GenerateXMark(options, &builder);
  if (!st.ok()) return st;
  return builder.Finish();
}

}  // namespace sj::xmlgen
