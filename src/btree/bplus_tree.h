// In-memory B+-tree over concatenated (pre, post, tag) keys.
//
// This is the index the tree-unaware SQL baseline uses (paper Section 2.1:
// "the RDBMS maintains a B-tree using concatenated (pre, post) keys", and
// Section 4.4: "the B-tree index actually uses concatenated (pre, post,
// tag name) keys"). The staircase join itself needs no such index -- that
// contrast is the point of Experiment 3.

#ifndef STAIRJOIN_BTREE_BPLUS_TREE_H_
#define STAIRJOIN_BTREE_BPLUS_TREE_H_

#include <compare>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace sj::btree {

/// Concatenated index key: (pre, post, tag), ordered lexicographically.
struct IndexKey {
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t tag = 0;

  friend auto operator<=>(const IndexKey&, const IndexKey&) = default;
};

/// Counters an index scan fills (the SQL baseline reports these).
struct ScanStats {
  uint64_t leaves_visited = 0;
  uint64_t entries_scanned = 0;
};

/// \brief B+-tree with linked leaves; supports point inserts and bulk load.
///
/// Fan-out is fixed (kLeafCapacity/kInternalCapacity keys per node), keys
/// are unique (duplicate inserts are rejected). Scans start at Seek() and
/// advance through the leaf chain.
class BPlusTree {
 public:
  static constexpr size_t kLeafCapacity = 64;
  static constexpr size_t kInternalCapacity = 64;

  BPlusTree();
  ~BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts one key; InvalidArgument on duplicates.
  Status Insert(const IndexKey& key);

  /// Bulk-loads from a strictly ascending key sequence into a tree with
  /// ~90% full leaves; InvalidArgument if unsorted/duplicated, or if the
  /// tree is non-empty.
  Status BulkLoad(const std::vector<IndexKey>& sorted_keys);

  /// True iff `key` is present.
  bool Contains(const IndexKey& key) const;

  /// Number of keys.
  uint64_t size() const { return size_; }

  /// Tree height in node levels (0 for the empty tree, 1 = root is a leaf).
  uint32_t height() const { return height_; }

  /// \brief Forward scan positioned at the first key >= the seek key.
  class Iterator {
   public:
    /// True while the iterator points at a key.
    bool Valid() const { return leaf_ != nullptr; }
    /// Current key; requires Valid().
    const IndexKey& key() const;
    /// Advances to the next key in order.
    void Next();

   private:
    friend class BPlusTree;
    Iterator(const void* leaf, size_t pos, ScanStats* stats)
        : leaf_(leaf), pos_(pos), stats_(stats) {}
    const void* leaf_;
    size_t pos_;
    ScanStats* stats_;
  };

  /// Positions at the first key >= `lower`; `stats` (optional) accumulates
  /// leaf/entry touch counts while the iterator advances.
  Iterator Seek(const IndexKey& lower, ScanStats* stats = nullptr) const;

  /// Checks the B+-tree invariants (sortedness, fill, separator sanity,
  /// leaf chain completeness); Internal status describing any violation.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Leaf;
  struct Internal;

  Leaf* FindLeaf(const IndexKey& key) const;
  Status CheckNodeRec(const Node* node, const IndexKey* lo,
                      const IndexKey* hi, uint32_t depth) const;

  std::unique_ptr<Node> root_;
  Leaf* first_leaf_ = nullptr;
  uint64_t size_ = 0;
  uint32_t height_ = 0;
};

}  // namespace sj::btree

#endif  // STAIRJOIN_BTREE_BPLUS_TREE_H_
