#include "btree/bplus_tree.h"

#include <algorithm>
#include <cassert>

namespace sj::btree {

struct BPlusTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BPlusTree::Leaf : BPlusTree::Node {
  Leaf() : Node(true) {}
  std::vector<IndexKey> keys;
  Leaf* next = nullptr;
};

struct BPlusTree::Internal : BPlusTree::Node {
  Internal() : Node(false) {}
  // children.size() == seps.size() + 1; subtree i holds keys < seps[i],
  // subtree i+1 keys >= seps[i].
  std::vector<IndexKey> seps;
  std::vector<std::unique_ptr<Node>> children;
};

BPlusTree::BPlusTree() = default;
BPlusTree::~BPlusTree() = default;

BPlusTree::Leaf* BPlusTree::FindLeaf(const IndexKey& key) const {
  if (!root_) return nullptr;
  Node* node = root_.get();
  while (!node->is_leaf) {
    auto* in = static_cast<Internal*>(node);
    size_t i = static_cast<size_t>(
        std::upper_bound(in->seps.begin(), in->seps.end(), key) -
        in->seps.begin());
    node = in->children[i].get();
  }
  return static_cast<Leaf*>(node);
}

Status BPlusTree::Insert(const IndexKey& key) {
  if (!root_) {
    auto leaf = std::make_unique<Leaf>();
    leaf->keys.push_back(key);
    first_leaf_ = leaf.get();
    root_ = std::move(leaf);
    size_ = 1;
    height_ = 1;
    return Status::OK();
  }

  // Descend remembering the path for splits on the way back up.
  std::vector<Internal*> path;
  Node* node = root_.get();
  while (!node->is_leaf) {
    auto* in = static_cast<Internal*>(node);
    path.push_back(in);
    size_t i = static_cast<size_t>(
        std::upper_bound(in->seps.begin(), in->seps.end(), key) -
        in->seps.begin());
    node = in->children[i].get();
  }
  auto* leaf = static_cast<Leaf*>(node);

  auto pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (pos != leaf->keys.end() && *pos == key) {
    return Status::InvalidArgument("BPlusTree: duplicate key");
  }
  leaf->keys.insert(pos, key);
  ++size_;
  if (leaf->keys.size() <= kLeafCapacity) return Status::OK();

  // Split the leaf; `sep` separates the two halves, new right sibling
  // `carry` bubbles up.
  auto right = std::make_unique<Leaf>();
  size_t half = leaf->keys.size() / 2;
  right->keys.assign(leaf->keys.begin() + static_cast<ptrdiff_t>(half),
                     leaf->keys.end());
  leaf->keys.resize(half);
  right->next = leaf->next;
  leaf->next = right.get();
  IndexKey sep = right->keys.front();
  std::unique_ptr<Node> carry = std::move(right);

  // Propagate splits upward.
  Node* child = leaf;
  while (!path.empty()) {
    Internal* parent = path.back();
    path.pop_back();
    // Find child's slot (by pointer).
    size_t i = 0;
    while (parent->children[i].get() != child) ++i;
    parent->seps.insert(parent->seps.begin() + static_cast<ptrdiff_t>(i),
                        sep);
    parent->children.insert(
        parent->children.begin() + static_cast<ptrdiff_t>(i) + 1,
        std::move(carry));
    if (parent->seps.size() <= kInternalCapacity) return Status::OK();

    auto new_right = std::make_unique<Internal>();
    size_t mid = parent->seps.size() / 2;
    sep = parent->seps[mid];
    new_right->seps.assign(
        parent->seps.begin() + static_cast<ptrdiff_t>(mid) + 1,
        parent->seps.end());
    for (size_t k = mid + 1; k < parent->children.size(); ++k) {
      new_right->children.push_back(std::move(parent->children[k]));
    }
    parent->seps.resize(mid);
    parent->children.resize(mid + 1);
    carry = std::move(new_right);
    child = parent;
  }

  // The root itself split: grow the tree by one level.
  auto new_root = std::make_unique<Internal>();
  new_root->seps.push_back(sep);
  new_root->children.push_back(std::move(root_));
  new_root->children.push_back(std::move(carry));
  root_ = std::move(new_root);
  ++height_;
  return Status::OK();
}

Status BPlusTree::BulkLoad(const std::vector<IndexKey>& sorted_keys) {
  if (root_) return Status::InvalidArgument("BulkLoad into non-empty tree");
  for (size_t i = 1; i < sorted_keys.size(); ++i) {
    if (!(sorted_keys[i - 1] < sorted_keys[i])) {
      return Status::InvalidArgument("BulkLoad: keys not strictly ascending");
    }
  }
  if (sorted_keys.empty()) return Status::OK();

  // Fill leaves to ~90%.
  const size_t per_leaf = kLeafCapacity * 9 / 10;
  std::vector<std::unique_ptr<Node>> level;
  std::vector<IndexKey> level_mins;
  Leaf* prev = nullptr;
  for (size_t i = 0; i < sorted_keys.size(); i += per_leaf) {
    auto leaf = std::make_unique<Leaf>();
    size_t end = std::min(sorted_keys.size(), i + per_leaf);
    leaf->keys.assign(sorted_keys.begin() + static_cast<ptrdiff_t>(i),
                      sorted_keys.begin() + static_cast<ptrdiff_t>(end));
    if (prev != nullptr) prev->next = leaf.get();
    if (first_leaf_ == nullptr) first_leaf_ = leaf.get();
    prev = leaf.get();
    level_mins.push_back(leaf->keys.front());
    level.push_back(std::move(leaf));
  }
  height_ = 1;

  // Build internal levels bottom-up.
  const size_t per_internal = kInternalCapacity * 9 / 10 + 1;  // children
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> upper;
    std::vector<IndexKey> upper_mins;
    for (size_t i = 0; i < level.size(); i += per_internal) {
      auto in = std::make_unique<Internal>();
      size_t end = std::min(level.size(), i + per_internal);
      upper_mins.push_back(level_mins[i]);
      for (size_t k = i; k < end; ++k) {
        if (k > i) in->seps.push_back(level_mins[k]);
        in->children.push_back(std::move(level[k]));
      }
      upper.push_back(std::move(in));
    }
    level = std::move(upper);
    level_mins = std::move(upper_mins);
    ++height_;
  }
  root_ = std::move(level.front());
  size_ = sorted_keys.size();
  return Status::OK();
}

bool BPlusTree::Contains(const IndexKey& key) const {
  Leaf* leaf = FindLeaf(key);
  if (leaf == nullptr) return false;
  return std::binary_search(leaf->keys.begin(), leaf->keys.end(), key);
}

const IndexKey& BPlusTree::Iterator::key() const {
  assert(Valid());
  return static_cast<const Leaf*>(leaf_)->keys[pos_];
}

void BPlusTree::Iterator::Next() {
  assert(Valid());
  const auto* leaf = static_cast<const Leaf*>(leaf_);
  if (stats_ != nullptr) ++stats_->entries_scanned;
  ++pos_;
  if (pos_ >= leaf->keys.size()) {
    leaf_ = leaf->next;
    pos_ = 0;
    if (stats_ != nullptr && leaf_ != nullptr) ++stats_->leaves_visited;
  }
}

BPlusTree::Iterator BPlusTree::Seek(const IndexKey& lower,
                                    ScanStats* stats) const {
  Leaf* leaf = FindLeaf(lower);
  if (leaf == nullptr) return Iterator(nullptr, 0, stats);
  if (stats != nullptr) ++stats->leaves_visited;
  size_t pos = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lower) -
      leaf->keys.begin());
  if (pos >= leaf->keys.size()) {
    leaf = leaf->next;
    pos = 0;
    if (stats != nullptr && leaf != nullptr) ++stats->leaves_visited;
  }
  return Iterator(leaf, pos, stats);
}

Status BPlusTree::CheckInvariants() const {
  if (!root_) {
    if (size_ != 0 || first_leaf_ != nullptr) {
      return Status::Internal("empty tree with stale metadata");
    }
    return Status::OK();
  }
  SJ_RETURN_NOT_OK(CheckNodeRec(root_.get(), nullptr, nullptr, 1));
  // The leaf chain must enumerate exactly size_ keys in ascending order.
  uint64_t count = 0;
  const IndexKey* prev = nullptr;
  for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
    for (const IndexKey& k : leaf->keys) {
      if (prev != nullptr && !(*prev < k)) {
        return Status::Internal("leaf chain out of order");
      }
      prev = &k;
      ++count;
    }
  }
  if (count != size_) return Status::Internal("leaf chain misses keys");
  return Status::OK();
}

Status BPlusTree::CheckNodeRec(const Node* node_base, const IndexKey* lo,
                               const IndexKey* hi, uint32_t depth) const {
  // Keys in this subtree must lie in [lo, hi).
  if (node_base->is_leaf) {
    if (depth != height_) return Status::Internal("leaf at wrong depth");
    const auto* leaf = static_cast<const Leaf*>(node_base);
    if (!std::is_sorted(leaf->keys.begin(), leaf->keys.end())) {
      return Status::Internal("unsorted leaf");
    }
    for (const IndexKey& k : leaf->keys) {
      if ((lo != nullptr && k < *lo) || (hi != nullptr && !(k < *hi))) {
        return Status::Internal("leaf key outside separator range");
      }
    }
    return Status::OK();
  }
  const auto* in = static_cast<const Internal*>(node_base);
  if (in->children.size() != in->seps.size() + 1) {
    return Status::Internal("internal node fan-out mismatch");
  }
  if (!std::is_sorted(in->seps.begin(), in->seps.end())) {
    return Status::Internal("unsorted separators");
  }
  for (size_t i = 0; i < in->children.size(); ++i) {
    const IndexKey* child_lo = i == 0 ? lo : &in->seps[i - 1];
    const IndexKey* child_hi = i == in->seps.size() ? hi : &in->seps[i];
    SJ_RETURN_NOT_OK(
        CheckNodeRec(in->children[i].get(), child_lo, child_hi, depth + 1));
  }
  return Status::OK();
}

}  // namespace sj::btree
