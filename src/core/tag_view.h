// Tag views: the document projected to the element nodes of one tag.
//
// Two paper features build on these projections:
//   * name-test pushdown (Section 4.4, Experiment 3):
//     nametest(scj(doc, cs), n) == scj(nametest(doc, n), cs) -- the pre/post
//     region properties remain valid on any pre-sorted subset of the plane,
//     so the staircase join can run directly over the projection;
//   * fragmentation by tag name (Section 6, Future Research: Q1 dropped
//     from 345 ms to 39 ms): TagIndex materializes all projections once at
//     load time and queries touch only the fragments they name.

#ifndef STAIRJOIN_CORE_TAG_VIEW_H_
#define STAIRJOIN_CORE_TAG_VIEW_H_

#include <memory>
#include <vector>

#include "core/staircase_join.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// \brief Pre-sorted projection of the doc table to one element tag.
struct TagView {
  TagId tag = kNoTag;
  /// Pre ranks of the element nodes carrying `tag`, ascending.
  std::vector<NodeId> pre;
  /// Postorder ranks, parallel to `pre`.
  std::vector<uint32_t> post;

  size_t size() const { return pre.size(); }
};

/// \brief Builds the projection for one tag (elements only; one doc scan).
TagView BuildTagView(const DocTable& doc, TagId tag);

/// \brief Fragmentation by tag name: one TagView per element tag, built in
/// a single scan of the document.
class TagIndex {
 public:
  /// Fragments `doc` (kept by reference; must outlive the index).
  explicit TagIndex(const DocTable& doc);

  /// The fragment for `tag` (empty view for unknown/attribute-only tags).
  const TagView& view(TagId tag) const;

  /// Number of element nodes carrying `tag` (0 for unknown tags) -- the
  /// selectivity statistic the pushdown cost model uses.
  uint64_t tag_count(TagId tag) const;

  /// Total bytes materialized by the index (for the bench report).
  uint64_t memory_bytes() const;

 private:
  std::vector<TagView> views_;  // indexed by TagId
  TagView empty_;
};

/// \brief Staircase join over a tag view: evaluates `context/axis::tag` in
/// one pass over the (usually tiny) projection instead of the document.
///
/// A thin shim over the backend-generic fragment join
/// (core/fragment_impl.h) instantiated with MemoryFragmentCursor; the
/// paged twin is storage::PagedStaircaseJoinView.
///
/// Supports the staircase axes. Skipping uses binary search on the
/// projection's pre column instead of pre-rank arithmetic. The context is
/// a sequence of *document* nodes; the result contains view nodes only and
/// is in document order, duplicate free. For the -or-self axes a context
/// node contributes itself iff it is a member of the view.
Result<NodeSequence> StaircaseJoinView(const DocTable& doc,
                                       const TagView& view,
                                       const NodeSequence& context, Axis axis,
                                       const StaircaseOptions& options = {},
                                       JoinStats* stats = nullptr);

}  // namespace sj

#endif  // STAIRJOIN_CORE_TAG_VIEW_H_
