// The storage-backend cursor abstraction of the staircase join and of
// the non-staircase axis steps.
//
// The Section 3/4 algorithms only ever touch the doc encoding through
// sequential post/kind/level reads over a pre-rank range plus forward
// jumps ("skipping"); the remaining XPath axes (child, parent, siblings,
// attribute, self) and the node-test filter additionally read the
// parent and tag columns. That access pattern is captured here as the
// DocAccessor concept so the algorithm bodies (core/kernels.h,
// core/staircase_impl.h and core/axis_impl.h) exist exactly once,
// generic over the backend:
//
//   * MemoryDocAccessor (below) reads the DocTable BATs directly; every
//     method inlines to a raw array access, so the instantiated kernels
//     compile to the same loops as the historical in-memory join;
//   * storage::PagedDocAccessor reads columns through a BufferPool, so
//     the same kernels turn "nodes never touched" into disk pages never
//     read (the paper's Section 6 disk-based outlook).
//
// Contract: reads are valid for pre ranks in [0, size()). A backend whose
// reads can fail (e.g. a buffer pool with every frame pinned) records the
// first error and returns zeros from then on; the driver checks ok() once
// per join and discards the result on failure. Kernels announce forward
// jumps via SkipTo(pre) *before* resuming reads at `pre`, which lets a
// paged backend release the pages it holds between the two positions.

#ifndef STAIRJOIN_CORE_DOC_ACCESSOR_H_
#define STAIRJOIN_CORE_DOC_ACCESSOR_H_

#include <concepts>
#include <cstdint>

#include "encoding/doc_table.h"
#include "util/status.h"

namespace sj {

/// \brief Column-cursor access to one document encoding (see file comment).
template <typename A>
concept DocAccessor = requires(A a, const A ca, uint64_t pre) {
  { ca.size() } -> std::convertible_to<size_t>;
  { a.Post(pre) } -> std::convertible_to<uint32_t>;
  { a.Kind(pre) } -> std::convertible_to<uint8_t>;
  { a.Level(pre) } -> std::convertible_to<uint8_t>;
  { a.Parent(pre) } -> std::convertible_to<NodeId>;
  { a.Tag(pre) } -> std::convertible_to<TagId>;
  { a.SkipTo(pre) };
  { ca.ok() } -> std::convertible_to<bool>;
  { ca.status() } -> std::convertible_to<Status>;
};

/// \brief DocAccessor over the in-memory DocTable BATs.
///
/// Borrows the table's columns; the table must outlive the accessor.
/// Infallible: ok() is always true.
class MemoryDocAccessor {
 public:
  explicit MemoryDocAccessor(const DocTable& doc)
      : post_(doc.posts().data()),
        kind_(doc.kinds().data()),
        level_(doc.levels().data()),
        parent_(doc.parents().data()),
        tag_(doc.tags_column().data()),
        size_(doc.size()) {}

  size_t size() const { return size_; }
  uint32_t Post(uint64_t pre) const { return post_[pre]; }
  uint8_t Kind(uint64_t pre) const { return kind_[pre]; }
  uint8_t Level(uint64_t pre) const { return level_[pre]; }
  NodeId Parent(uint64_t pre) const { return parent_[pre]; }
  TagId Tag(uint64_t pre) const { return tag_[pre]; }
  void SkipTo(uint64_t) const {}  // random access: jumps cost nothing
  bool ok() const { return true; }
  Status status() const { return Status::OK(); }

 private:
  const uint32_t* post_;
  const uint8_t* kind_;
  const uint8_t* level_;
  const uint32_t* parent_;
  const uint32_t* tag_;
  size_t size_;
};

static_assert(DocAccessor<MemoryDocAccessor>);

}  // namespace sj

#endif  // STAIRJOIN_CORE_DOC_ACCESSOR_H_
