// Backend-generic set-at-a-time kernels for the non-staircase axes,
// internal.
//
// This header holds the ONE implementation of the child / parent /
// attribute / following-sibling / preceding-sibling / self axis steps,
// parameterized over a DocAccessor (core/doc_accessor.h) exactly like
// the staircase kernels of core/kernels.h. The public entry points are
// AxisCursorStep (core/axis_step.cc, in-memory backend) and
// storage::PagedAxisCursorStep (storage/paged_doc.cc, buffer-pool
// backend); baselines/naive.h remains as the per-context oracle only.
//
// The three sibling-shaped axes (child, following-sibling,
// preceding-sibling) reduce to the same sorted-context merge: each
// surviving context node opens one *frame* -- a pre-rank interval
// scanned with subtree jumps (a sibling's whole subtree is stepped over
// via Eq. (1), so interior nodes are never touched; on a paged backend,
// never faulted). Frame regions are laminar (two regions are disjoint
// or properly nested, because sibling ranges live inside parent
// subtrees), so a stack merges them into duplicate-free document-order
// output without a sort: a frame revealed inside another frame's jump
// runs to completion before the outer frame resumes.
//
// Covered-context pruning mirrors Algorithm 1: following-siblings of a
// later same-parent context node are a subset of the earliest one's
// (dually, preceding-siblings of an earlier one are covered by the
// latest), so only one frame per parent survives. Child sets of
// distinct context nodes are disjoint, so child frames need no pruning.
//
// JoinStats keep the kernels.h semantics: nodes_scanned are candidate
// positions examined (one Kind read, plus a Tag read iff the folded
// node test needs it), nodes_skipped are positions jumped over, and
// pruned_context_size counts the frames actually scanned.

#ifndef STAIRJOIN_CORE_AXIS_IMPL_H_
#define STAIRJOIN_CORE_AXIS_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bat/operators.h"
#include "core/axis_step.h"
#include "core/doc_accessor.h"
#include "core/staircase_impl.h"
#include "util/result.h"

namespace sj::internal {

/// The subtree of v spans pre ranks [v, post(v) + level(v)] -- Eq. (1)
/// with the exact level term.
template <DocAccessor A>
uint64_t SubtreeEndOver(A& acc, uint64_t v) {
  return static_cast<uint64_t>(acc.Post(v)) + acc.Level(v);
}

/// One sibling-scan frame: candidate positions [v, end], visited with
/// subtree jumps.
struct AxisFrame {
  uint64_t v = 0;    ///< next candidate position
  uint64_t end = 0;  ///< last position of the frame (inclusive)
};

/// Merges sibling frames (sorted by start, laminar regions -- see file
/// comment) over one cursor into duplicate-free document-order output.
template <DocAccessor A>
void MergeSiblingFrames(A& acc, const std::vector<AxisFrame>& frames,
                        AxisNodeTest test, NodeSequence* result,
                        JoinStats* stats) {
  std::vector<AxisFrame> stack;
  size_t j = 0;
  const size_t m = frames.size();
  while (j < m || !stack.empty()) {
    if (stack.empty()) {
      stack.push_back(frames[j++]);
      continue;
    }
    if (j < m && frames[j].v < stack.back().v) {
      // The next frame lies inside a subtree the top frame jumped over;
      // its emissions precede the top frame's next candidate.
      stack.push_back(frames[j++]);
      continue;
    }
    AxisFrame& f = stack.back();
    if (f.v > f.end) {
      stack.pop_back();
      continue;
    }
    const uint64_t w = f.v;
    ++stats->nodes_scanned;
    const uint8_t kind = acc.Kind(w);
    if (kind == kAttrKind) {
      // Attribute nodes are ranked between their owner and its first
      // child; they are not children/siblings. Step over.
      f.v = w + 1;
      continue;
    }
    if (test.Matches(acc, w, kind)) result->push_back(static_cast<NodeId>(w));
    // A failed backend reads 0, which can place the subtree end left of
    // w; clamp so the cursor always advances (reads of 0 must still
    // terminate -- the driver surfaces the sticky error afterwards).
    const uint64_t wend = SubtreeEndOver(acc, w);
    f.v = std::max(w + 1, wend + 1);
    if (wend > w) {
      stats->nodes_skipped += wend - w;
      // Announce the jump so a paged backend can release the pages it
      // holds; the next read is either the jump target or a nested
      // frame's start, whichever comes first.
      uint64_t next = f.v;
      if (j < m && frames[j].v < next) next = frames[j].v;
      acc.SkipTo(next);
    }
  }
}

/// child: one frame per context node over its own subtree (child sets
/// of distinct nodes are disjoint; context order == start order).
template <DocAccessor A>
std::vector<AxisFrame> ChildFrames(A& acc, const NodeSequence& context) {
  std::vector<AxisFrame> frames;
  frames.reserve(context.size());
  for (NodeId c : context) {
    uint64_t end = SubtreeEndOver(acc, c);
    if (end > c) frames.push_back({static_cast<uint64_t>(c) + 1, end});
  }
  return frames;
}

/// The (parent, context) pairs of the sibling axes: attribute nodes and
/// the root have no siblings.
template <DocAccessor A>
std::vector<std::pair<NodeId, NodeId>> SiblingPairs(
    A& acc, const NodeSequence& context) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(context.size());
  for (NodeId c : context) {
    if (acc.Kind(c) == kAttrKind) continue;
    NodeId p = acc.Parent(c);
    if (p == kNilNode) continue;
    pairs.emplace_back(p, c);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// following-sibling: one frame per distinct parent, opened by its
/// *earliest* context child (later same-parent context nodes are
/// covered), scanning from past the child's subtree to the parent's
/// subtree end.
template <DocAccessor A>
std::vector<AxisFrame> FollowingSiblingFrames(A& acc,
                                              const NodeSequence& context) {
  std::vector<std::pair<NodeId, NodeId>> pairs = SiblingPairs(acc, context);
  std::vector<AxisFrame> frames;
  frames.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0 && pairs[i].first == pairs[i - 1].first) continue;  // covered
    uint64_t v = SubtreeEndOver(acc, pairs[i].second) + 1;
    uint64_t end = SubtreeEndOver(acc, pairs[i].first);
    if (v <= end) frames.push_back({v, end});
  }
  // Frame starts follow subtree ends, not context order (a nested
  // context node's siblings can precede an enclosing one's).
  std::sort(frames.begin(), frames.end(),
            [](const AxisFrame& a, const AxisFrame& b) { return a.v < b.v; });
  return frames;
}

/// preceding-sibling: one frame per distinct parent, opened by its
/// *latest* context child, scanning from the parent's first child up to
/// (excluding) the context child. Sorting by parent already sorts the
/// frames by start.
template <DocAccessor A>
std::vector<AxisFrame> PrecedingSiblingFrames(A& acc,
                                              const NodeSequence& context) {
  std::vector<std::pair<NodeId, NodeId>> pairs = SiblingPairs(acc, context);
  std::vector<AxisFrame> frames;
  frames.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i + 1 < pairs.size() && pairs[i + 1].first == pairs[i].first) {
      continue;  // covered by the later same-parent context node
    }
    NodeId p = pairs[i].first;
    NodeId c = pairs[i].second;
    if (c > static_cast<uint64_t>(p) + 1) {
      frames.push_back({static_cast<uint64_t>(p) + 1,
                        static_cast<uint64_t>(c) - 1});
    }
  }
  return frames;
}

/// parent: one Parent read per context node, test folded. Parents of a
/// sorted context are *nearly* sorted (siblings share one, nested
/// contexts interleave), so the common case dedups adjacent repeats and
/// only genuinely out-of-order output pays a sort.
template <DocAccessor A>
void ParentKernel(A& acc, const NodeSequence& context, AxisNodeTest test,
                  NodeSequence* result, JoinStats* stats) {
  bool sorted = true;
  for (NodeId c : context) {
    NodeId p = acc.Parent(c);
    if (p == kNilNode) continue;
    ++stats->nodes_scanned;
    if (!test.accept_all && !test.Matches(acc, p, acc.Kind(p))) continue;
    if (!result->empty()) {
      if (result->back() == p) {
        ++stats->duplicates_removed;
        continue;
      }
      if (result->back() > p) sorted = false;
    }
    result->push_back(p);
  }
  if (!sorted) {
    size_t before = result->size();
    *result = bat::SortUnique(std::move(*result));
    stats->duplicates_removed += before - result->size();
  }
}

/// attribute: attribute nodes are ranked directly after their owner, so
/// each context node's attributes are one contiguous scan stopped by
/// the first non-attribute (or foreign-owner) position. Output order
/// follows context order because the ranges cannot interleave.
template <DocAccessor A>
void AttributeKernel(A& acc, const NodeSequence& context, AxisNodeTest test,
                     NodeSequence* result, JoinStats* stats) {
  const uint64_t n = acc.size();
  for (NodeId c : context) {
    for (uint64_t v = static_cast<uint64_t>(c) + 1; v < n; ++v) {
      ++stats->nodes_scanned;
      if (acc.Kind(v) != kAttrKind || acc.Parent(v) != c) break;
      if (test.Matches(acc, v, kAttrKind)) {
        result->push_back(static_cast<NodeId>(v));
      }
    }
  }
}

/// self: the context filtered by the node test.
template <DocAccessor A>
void SelfKernel(A& acc, const NodeSequence& context, AxisNodeTest test,
                NodeSequence* result, JoinStats* stats) {
  for (NodeId c : context) {
    ++stats->nodes_scanned;
    if (test.accept_all || test.Matches(acc, c, acc.Kind(c))) {
      result->push_back(c);
    }
  }
}

/// Node-test filter over a document-order sequence (the set-at-a-time
/// replacement for per-node FilterByTest loops after a staircase-axis
/// join): sequential kind/tag reads through the backend.
template <DocAccessor A>
NodeSequence FilterSequenceOver(A& acc, const NodeSequence& nodes,
                                AxisNodeTest test) {
  if (test.accept_all) return nodes;
  NodeSequence out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) {
    if (test.Matches(acc, v, acc.Kind(v))) out.push_back(v);
  }
  return out;
}

/// The non-staircase axis step over any backend: validation, frame
/// construction with covered-context pruning, the merge scan, stats.
/// AxisCursorStep and PagedAxisCursorStep are thin shims around this
/// function.
template <DocAccessor A>
Result<NodeSequence> AxisStepOver(A& acc, const NodeSequence& context,
                                  Axis axis, const AxisNodeTest& test,
                                  JoinStats* stats) {
  if (!IsCursorAxis(axis)) {
    return Status::Unsupported(std::string("axis cursor step on axis ") +
                               std::string(AxisName(axis)));
  }
  SJ_RETURN_NOT_OK(ValidateContext(acc, context));

  NodeSequence result;
  JoinStats local;
  local.context_size = context.size();
  if (context.empty() || acc.size() == 0) {
    if (stats != nullptr) *stats = local;
    return result;
  }

  switch (axis) {
    case Axis::kChild: {
      std::vector<AxisFrame> frames = ChildFrames(acc, context);
      local.pruned_context_size = frames.size();
      MergeSiblingFrames(acc, frames, test, &result, &local);
      break;
    }
    case Axis::kFollowingSibling: {
      std::vector<AxisFrame> frames = FollowingSiblingFrames(acc, context);
      local.pruned_context_size = frames.size();
      MergeSiblingFrames(acc, frames, test, &result, &local);
      break;
    }
    case Axis::kPrecedingSibling: {
      std::vector<AxisFrame> frames = PrecedingSiblingFrames(acc, context);
      local.pruned_context_size = frames.size();
      MergeSiblingFrames(acc, frames, test, &result, &local);
      break;
    }
    case Axis::kParent:
      local.pruned_context_size = context.size();
      ParentKernel(acc, context, test, &result, &local);
      break;
    case Axis::kAttribute:
      local.pruned_context_size = context.size();
      AttributeKernel(acc, context, test, &result, &local);
      break;
    case Axis::kSelf:
      local.pruned_context_size = context.size();
      SelfKernel(acc, context, test, &result, &local);
      break;
    default:
      return Status::Internal("unreachable");
  }

  if (!acc.ok()) return acc.status();

  local.result_size = result.size();
  if (stats != nullptr) *stats = local;
  return result;
}

/// Per-context-node output of the positional axis step: `nodes` holds
/// group k's matches in document order at
/// [offsets[k], offsets[k+1]); offsets.size() == context.size() + 1.
/// Groups may overlap in content (two context nodes can share
/// descendants) -- positional ranking is per context node, which is
/// exactly why covered-context pruning must NOT apply here.
struct PositionalGroups {
  NodeSequence nodes;
  std::vector<size_t> offsets;
};

/// \brief The set-at-a-time positional axis step: one cursor pass per
/// context frame with the node test folded in, producing the per-context
/// groups a positional predicate ranks within. Replaces the per-context
/// naive fallback (which bypassed the buffer pool) -- every candidate
/// read below is charged to the backend, subtree jumps announce SkipTo.
///
/// Group contents reproduce baselines/naive.cc AppendPerContext
/// semantics exactly (it is the oracle the tests compare against):
/// self/or-self emit the context node itself subject only to the node
/// test; descendant/following/preceding exclude attribute nodes; child
/// and the sibling axes step over attribute ranks and jump whole
/// sibling subtrees; ancestors come out root-first (document order).
/// Reverse-axis rank reordering is the caller's job.
template <DocAccessor A>
Result<PositionalGroups> PositionalAxisStepOver(A& acc,
                                                const NodeSequence& context,
                                                Axis axis,
                                                const AxisNodeTest& test,
                                                JoinStats* stats) {
  SJ_RETURN_NOT_OK(ValidateContext(acc, context));
  PositionalGroups groups;
  groups.offsets.reserve(context.size() + 1);
  groups.offsets.push_back(0);
  JoinStats local;
  local.context_size = context.size();
  // Every frame scans: positions are per context node, so no frame is
  // covered by another.
  local.pruned_context_size = context.size();
  const uint64_t n = acc.size();
  AxisNodeTest t = test;  // Matches() is non-const (tag reads)

  // One candidate visit: kind read + folded test.
  auto emit = [&](uint64_t v, bool allow_attr) {
    ++local.nodes_scanned;
    const uint8_t kind = acc.Kind(v);
    if (!allow_attr && kind == kAttrKind) return false;
    if (t.Matches(acc, v, kind)) {
      groups.nodes.push_back(static_cast<NodeId>(v));
      return true;
    }
    return false;
  };

  for (NodeId c : context) {
    switch (axis) {
      case Axis::kSelf: {
        emit(c, true);
        break;
      }
      case Axis::kChild: {
        const uint64_t end = SubtreeEndOver(acc, c);
        uint64_t v = static_cast<uint64_t>(c) + 1;
        while (v <= end && v < n) {
          ++local.nodes_scanned;
          const uint8_t kind = acc.Kind(v);
          if (kind == kAttrKind) {
            ++v;
            continue;
          }
          if (t.Matches(acc, v, kind)) {
            groups.nodes.push_back(static_cast<NodeId>(v));
          }
          const uint64_t vend = SubtreeEndOver(acc, v);
          const uint64_t next = std::max(v + 1, vend + 1);
          if (vend > v) {
            local.nodes_skipped += vend - v;
            acc.SkipTo(next);
          }
          v = next;
        }
        break;
      }
      case Axis::kAttribute: {
        for (uint64_t v = static_cast<uint64_t>(c) + 1; v < n; ++v) {
          ++local.nodes_scanned;
          if (acc.Kind(v) != kAttrKind || acc.Parent(v) != c) break;
          if (t.Matches(acc, v, kAttrKind)) {
            groups.nodes.push_back(static_cast<NodeId>(v));
          }
        }
        break;
      }
      case Axis::kParent: {
        const NodeId p = acc.Parent(c);
        if (p != kNilNode) emit(p, true);
        break;
      }
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        // Parent chain runs leaf-to-root; document order is root-first.
        std::vector<NodeId> chain;
        for (NodeId p = acc.Parent(c); p != kNilNode; p = acc.Parent(p)) {
          ++local.nodes_scanned;
          if (t.Matches(acc, p, acc.Kind(p))) chain.push_back(p);
        }
        std::reverse(chain.begin(), chain.end());
        groups.nodes.insert(groups.nodes.end(), chain.begin(), chain.end());
        if (axis == Axis::kAncestorOrSelf) emit(c, true);
        break;
      }
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        if (axis == Axis::kDescendantOrSelf) emit(c, true);
        const uint64_t end = SubtreeEndOver(acc, c);
        for (uint64_t v = static_cast<uint64_t>(c) + 1; v <= end && v < n;
             ++v) {
          emit(v, false);
        }
        break;
      }
      case Axis::kFollowing: {
        const uint64_t start = SubtreeEndOver(acc, c) + 1;
        for (uint64_t v = start; v < n; ++v) emit(v, false);
        break;
      }
      case Axis::kPreceding: {
        const auto post_c = acc.Post(c);
        for (uint64_t v = 0; v < static_cast<uint64_t>(c); ++v) {
          ++local.nodes_scanned;
          const uint8_t kind = acc.Kind(v);
          if (kind == kAttrKind) continue;
          if (acc.Post(v) >= post_c) continue;  // ancestor, not preceding
          if (t.Matches(acc, v, kind)) {
            groups.nodes.push_back(static_cast<NodeId>(v));
          }
        }
        break;
      }
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling: {
        if (acc.Kind(c) == kAttrKind) break;
        const NodeId p = acc.Parent(c);
        if (p == kNilNode) break;
        uint64_t v;
        uint64_t end;
        if (axis == Axis::kFollowingSibling) {
          v = SubtreeEndOver(acc, c) + 1;
          end = SubtreeEndOver(acc, p);
        } else {
          v = static_cast<uint64_t>(p) + 1;
          end = static_cast<uint64_t>(c) - 1;  // context node excluded
        }
        while (v < n && v <= end) {
          ++local.nodes_scanned;
          const uint8_t kind = acc.Kind(v);
          if (kind == kAttrKind) {
            ++v;
            continue;
          }
          if (t.Matches(acc, v, kind)) {
            groups.nodes.push_back(static_cast<NodeId>(v));
          }
          const uint64_t vend = SubtreeEndOver(acc, v);
          const uint64_t next = std::max(v + 1, vend + 1);
          if (vend > v) {
            local.nodes_skipped += vend - v;
            acc.SkipTo(next);
          }
          v = next;
        }
        break;
      }
    }
    groups.offsets.push_back(groups.nodes.size());
  }

  if (!acc.ok()) return acc.status();
  local.result_size = groups.nodes.size();
  if (stats != nullptr) *stats = local;
  return groups;
}

}  // namespace sj::internal

#endif  // STAIRJOIN_CORE_AXIS_IMPL_H_
