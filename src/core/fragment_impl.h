// Backend-generic *fragment* staircase-join drivers, internal.
//
// This header holds the ONE implementation of the paper's Section 4.4
// name-test pushdown (`nametest(scj(doc, cs), n) == scj(nametest(doc, n),
// cs)`): the staircase join run directly over a pre-sorted per-tag
// projection. It is the fragment-shaped sibling of core/staircase_impl.h
// -- Algorithms 1-4 exist exactly once per shape: kernels.h /
// staircase_impl.h for whole documents, this file for fragments.
//
// Everything is parameterized over a FragmentCursor (the fragment's
// pre/post columns, core/fragment_cursor.h) plus a DocAccessor (the
// context nodes' postorder ranks, core/doc_accessor.h), so one body
// serves the in-memory TagView and the buffer-pool-backed paged
// fragments (storage/paged_tags.h).
//
// Skipping on a fragment uses binary search on the pre column instead of
// pre-rank arithmetic -- fragment slots are not dense in pre order. The
// JoinStats counters keep the kernels.h semantics, with "node" meaning
// "fragment slot": nodes_scanned are slots touched with a postorder
// comparison, nodes_copied are slots appended without one (their post
// column is never read -- on a paged backend, never faulted), and
// nodes_skipped are slots never touched at all.

#ifndef STAIRJOIN_CORE_FRAGMENT_IMPL_H_
#define STAIRJOIN_CORE_FRAGMENT_IMPL_H_

#include <algorithm>
#include <cstdint>

#include "core/doc_accessor.h"
#include "core/fragment_cursor.h"
#include "core/staircase_impl.h"
#include "core/staircase_join.h"
#include "util/result.h"

namespace sj::internal {

/// Descendant / descendant-or-self over a fragment. One partition per
/// surviving context node, scanned against its postorder rank
/// (Algorithm 2); skipping ends a partition at the first Z-region slot
/// (Algorithm 3); estimation copies the guaranteed-descendant slots --
/// fragment pre ranks <= post(c), Eq. (1) -- without reading the post
/// column (Algorithm 4).
template <FragmentCursor F, DocAccessor A>
void FragJoinDesc(F& frag, A& acc, const NodeSequence& kept, bool or_self,
                  SkipMode mode, NodeSequence* result, JoinStats* stats) {
  const uint64_t n = acc.size();
  for (size_t k = 0; k < kept.size(); ++k) {
    NodeId c = kept[k];
    uint64_t limit = k + 1 < kept.size() ? kept[k + 1] - 1 : n - 1;
    uint32_t bound = acc.Post(c);
    size_t j = frag.LowerBound(c);
    if (j < frag.size() && frag.Pre(j) == c) {
      // The context node itself carries the fragment's tag.
      if (or_self) result->push_back(c);
      ++j;
    }
    if (mode == SkipMode::kEstimated) {
      // Copy phase: slots with pre <= post(c) are guaranteed descendants
      // of c (Eq. (1)); no postorder comparison needed.
      size_t guaranteed = frag.LowerBound(static_cast<uint64_t>(bound) + 1);
      for (; j < guaranteed; ++j) {
        ++stats->nodes_copied;
        result->push_back(frag.Pre(j));
      }
    }
    for (; j < frag.size(); ++j) {
      NodeId pre = frag.Pre(j);
      if (pre > limit) break;
      ++stats->nodes_scanned;
      if (frag.Post(j) < bound) {
        result->push_back(pre);
      } else if (mode != SkipMode::kNone) {
        // Z region: no later slot in this partition matches. The final
        // partition ends the fragment, so its slot count needs no
        // LowerBound (which on a paged backend would fault a page only
        // to count the slots skipping promises never to touch).
        size_t end = limit + 1 >= n ? frag.size() : frag.LowerBound(limit + 1);
        stats->nodes_skipped += end - j - 1;
        frag.SkipTo(end);
        break;
      }
    }
  }
}

/// Ancestor / ancestor-or-self over a fragment. One window per surviving
/// context node; a slot below the boundary heads a subtree that entirely
/// precedes the context node, so skipping resumes past its guaranteed
/// descendants -- the first slot with pre > post (Section 3.3, with the
/// binary search standing in for pre-rank arithmetic).
template <FragmentCursor F, DocAccessor A>
void FragJoinAnc(F& frag, A& acc, const NodeSequence& kept, bool or_self,
                 SkipMode mode, NodeSequence* result, JoinStats* stats) {
  uint64_t window_start = 0;
  for (size_t k = 0; k < kept.size(); ++k) {
    NodeId c = kept[k];
    uint32_t bound = acc.Post(c);
    size_t j = frag.LowerBound(window_start);
    size_t end = frag.LowerBound(c);  // slots with pre < pre(c)
    while (j < end) {
      ++stats->nodes_scanned;
      uint32_t post = frag.Post(j);
      if (post > bound) {
        result->push_back(frag.Pre(j));
        ++j;
      } else if (mode == SkipMode::kNone) {
        ++j;
      } else {
        size_t next = frag.LowerBound(static_cast<uint64_t>(post) + 1);
        next = std::max(next, j + 1);
        stats->nodes_skipped += next - j - 1;
        frag.SkipTo(next);
        j = next;
      }
    }
    if (or_self && end < frag.size() && frag.Pre(end) == c) {
      result->push_back(c);
    }
    window_start = static_cast<uint64_t>(c) + 1;
  }
}

/// Following over a fragment: a single region query from the minimum-
/// postorder context node m (Section 3.1). Skipping jumps straight to the
/// first slot with pre > post(m) -- everything before it is a descendant
/// of m -- and after the first hit the remainder is a pure copy.
template <FragmentCursor F, DocAccessor A>
void FragJoinFollowing(F& frag, A& acc, NodeId m, SkipMode mode,
                       NodeSequence* result, JoinStats* stats) {
  uint32_t bound = acc.Post(m);
  size_t j = frag.LowerBound(static_cast<uint64_t>(m) + 1);
  if (mode != SkipMode::kNone) {
    size_t start = frag.LowerBound(static_cast<uint64_t>(bound) + 1);
    if (start > j) {
      stats->nodes_skipped += start - j;
      frag.SkipTo(start);
      j = start;
    }
  }
  bool copying = false;
  for (; j < frag.size(); ++j) {
    if (copying) {
      ++stats->nodes_copied;
      result->push_back(frag.Pre(j));
      continue;
    }
    ++stats->nodes_scanned;
    if (frag.Post(j) > bound) {
      result->push_back(frag.Pre(j));
      if (mode != SkipMode::kNone) copying = true;
    }
  }
}

/// Preceding over a fragment: a single region query left of the maximum-
/// preorder context node. Slots that fail the postorder test are
/// ancestors of the context node (<= h of them), so nothing can be
/// skipped -- but under kEstimated every *hit* v opens a comparison-free
/// copy phase over v's guaranteed descendants (fragment pre ranks
/// <= post(v), Eq. (1)): a preceding node's whole subtree precedes.
template <FragmentCursor F, DocAccessor A>
void FragJoinPreceding(F& frag, A& acc, NodeId big, SkipMode mode,
                       NodeSequence* result, JoinStats* stats) {
  uint32_t bound = acc.Post(big);
  size_t end = frag.LowerBound(big);  // slots with pre < pre(big)
  size_t j = 0;
  while (j < end) {
    ++stats->nodes_scanned;
    uint32_t post = frag.Post(j);
    if (post < bound) {
      result->push_back(frag.Pre(j));
      ++j;
      if (mode == SkipMode::kEstimated) {
        size_t next =
            std::min(frag.LowerBound(static_cast<uint64_t>(post) + 1), end);
        for (; j < next; ++j) {
          ++stats->nodes_copied;
          result->push_back(frag.Pre(j));
        }
      }
    } else {
      ++j;  // an ancestor of the context node: not preceding
    }
  }
}

/// The fragment staircase join over any backend pair: validation, pruning
/// (Algorithm 1 over the *document* accessor -- context nodes are doc
/// rows), the per-axis fragment drivers above, stats. StaircaseJoinView
/// (core/tag_view.cc) and PagedStaircaseJoinView (storage/paged_tags.cc)
/// are thin shims around this function.
///
/// -or-self semantics: a context node contributes itself iff it is a
/// member of the fragment (found by binary search on the pre column), so
/// no tag column is consulted at all -- on a paged backend even the self
/// test is charged to the pool.
template <FragmentCursor F, DocAccessor A>
Result<NodeSequence> FragmentStaircaseJoinOver(F& frag, A& acc,
                                               const NodeSequence& context,
                                               Axis axis,
                                               const StaircaseOptions& options,
                                               JoinStats* stats) {
  if (!IsStaircaseAxis(axis)) {
    return Status::Unsupported(std::string("staircase view join on axis ") +
                               std::string(AxisName(axis)));
  }
  SJ_RETURN_NOT_OK(ValidateContext(acc, context));

  NodeSequence result;
  JoinStats local;
  local.context_size = context.size();
  if (context.empty() || frag.size() == 0) {
    // An empty fragment has no members, so even -or-self contributes
    // nothing (a self node matching the name test would be in the
    // fragment).
    if (stats != nullptr) *stats = local;
    return result;
  }

  NodeSequence kept = PruneContextOver(acc, context, axis);
  local.pruned_context_size = kept.size();

  switch (axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      FragJoinDesc(frag, acc, kept, axis == Axis::kDescendantOrSelf,
                   options.skip_mode, &result, &local);
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      FragJoinAnc(frag, acc, kept, axis == Axis::kAncestorOrSelf,
                  options.skip_mode, &result, &local);
      break;
    case Axis::kFollowing:
      FragJoinFollowing(frag, acc, kept.front(), options.skip_mode, &result,
                        &local);
      break;
    case Axis::kPreceding:
      FragJoinPreceding(frag, acc, kept.front(), options.skip_mode, &result,
                        &local);
      break;
    default:
      return Status::Internal("unreachable");
  }

  if (!acc.ok()) return acc.status();
  if (!frag.ok()) return frag.status();

  local.result_size = result.size();
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace sj::internal

#endif  // STAIRJOIN_CORE_FRAGMENT_IMPL_H_
