#include "core/algebra.h"

namespace sj::algebra {

NodeSequence root(const DocTable& doc) {
  return doc.empty() ? NodeSequence{} : NodeSequence{doc.root()};
}

NodeSequence nametest(const DocTable& doc, const NodeSequence& nodes,
                      std::string_view tag) {
  NodeSequence out;
  std::optional<TagId> id = doc.tags().Lookup(tag);
  if (!id.has_value()) return out;
  out.reserve(nodes.size());
  for (NodeId v : nodes) {
    if (doc.kind(v) == NodeKind::kElement && doc.tag(v) == *id) {
      out.push_back(v);
    }
  }
  return out;
}

TagView nametest(const DocTable& doc, std::string_view tag) {
  std::optional<TagId> id = doc.tags().Lookup(tag);
  if (!id.has_value()) {
    TagView empty;
    return empty;
  }
  return BuildTagView(doc, *id);
}

Result<NodeSequence> staircasejoin_desc(const DocTable& doc,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options,
                                        JoinStats* stats) {
  return StaircaseJoin(doc, context, Axis::kDescendant, options, stats);
}

Result<NodeSequence> staircasejoin_anc(const DocTable& doc,
                                       const NodeSequence& context,
                                       const StaircaseOptions& options,
                                       JoinStats* stats) {
  return StaircaseJoin(doc, context, Axis::kAncestor, options, stats);
}

Result<NodeSequence> staircasejoin_foll(const DocTable& doc,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options,
                                        JoinStats* stats) {
  return StaircaseJoin(doc, context, Axis::kFollowing, options, stats);
}

Result<NodeSequence> staircasejoin_prec(const DocTable& doc,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options,
                                        JoinStats* stats) {
  return StaircaseJoin(doc, context, Axis::kPreceding, options, stats);
}

Result<NodeSequence> staircasejoin_desc(const DocTable& doc,
                                        const TagView& view,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options,
                                        JoinStats* stats) {
  return StaircaseJoinView(doc, view, context, Axis::kDescendant, options,
                           stats);
}

Result<NodeSequence> staircasejoin_anc(const DocTable& doc,
                                       const TagView& view,
                                       const NodeSequence& context,
                                       const StaircaseOptions& options,
                                       JoinStats* stats) {
  return StaircaseJoinView(doc, view, context, Axis::kAncestor, options,
                           stats);
}

}  // namespace sj::algebra
