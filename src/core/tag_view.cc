#include "core/tag_view.h"

#include "core/doc_accessor.h"
#include "core/fragment_cursor.h"
#include "core/fragment_impl.h"

namespace sj {

TagView BuildTagView(const DocTable& doc, TagId tag) {
  TagView view;
  view.tag = tag;
  const auto kinds = doc.kinds();
  const auto tags = doc.tags_column();
  const auto posts = doc.posts();
  for (size_t i = 0; i < doc.size(); ++i) {
    if (tags[i] == tag &&
        kinds[i] == static_cast<uint8_t>(NodeKind::kElement)) {
      view.pre.push_back(static_cast<NodeId>(i));
      view.post.push_back(posts[i]);
    }
  }
  return view;
}

TagIndex::TagIndex(const DocTable& doc) {
  views_.resize(doc.tags().size());
  for (size_t t = 0; t < views_.size(); ++t) {
    views_[t].tag = static_cast<TagId>(t);
  }
  const auto kinds = doc.kinds();
  const auto tags = doc.tags_column();
  const auto posts = doc.posts();
  for (size_t i = 0; i < doc.size(); ++i) {
    if (kinds[i] == static_cast<uint8_t>(NodeKind::kElement)) {
      TagView& v = views_[tags[i]];
      v.pre.push_back(static_cast<NodeId>(i));
      v.post.push_back(posts[i]);
    }
  }
}

const TagView& TagIndex::view(TagId tag) const {
  if (tag == kNoTag || tag >= views_.size()) return empty_;
  return views_[tag];
}

uint64_t TagIndex::tag_count(TagId tag) const { return view(tag).size(); }

uint64_t TagIndex::memory_bytes() const {
  uint64_t bytes = 0;
  for (const TagView& v : views_) {
    bytes += v.pre.capacity() * sizeof(NodeId) +
             v.post.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

// A shim over the backend-generic fragment staircase join
// (core/fragment_impl.h) instantiated with the in-memory cursors.
Result<NodeSequence> StaircaseJoinView(const DocTable& doc,
                                       const TagView& view,
                                       const NodeSequence& context, Axis axis,
                                       const StaircaseOptions& options,
                                       JoinStats* stats) {
  MemoryFragmentCursor frag(view);
  MemoryDocAccessor acc(doc);
  return internal::FragmentStaircaseJoinOver(frag, acc, context, axis, options,
                                             stats);
}

}  // namespace sj
