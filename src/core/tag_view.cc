#include "core/tag_view.h"

#include <algorithm>

namespace sj {
namespace {

/// First view position with pre rank >= bound.
size_t LowerBound(const TagView& view, uint64_t bound) {
  return static_cast<size_t>(
      std::lower_bound(view.pre.begin(), view.pre.end(), bound) -
      view.pre.begin());
}

void ViewJoinDesc(const TagView& view, const NodeSequence& kept,
                  const DocTable& doc, bool or_self, TagId tag,
                  const StaircaseOptions& options, NodeSequence* result,
                  JoinStats* stats) {
  const uint64_t n = doc.size();
  for (size_t k = 0; k < kept.size(); ++k) {
    NodeId c = kept[k];
    uint64_t limit = k + 1 < kept.size() ? kept[k + 1] - 1 : n - 1;
    uint32_t bound = doc.post(c);
    if (or_self && doc.kind(c) == NodeKind::kElement && doc.tag(c) == tag) {
      result->push_back(c);
    }
    size_t j = LowerBound(view, static_cast<uint64_t>(c) + 1);
    if (options.skip_mode == SkipMode::kEstimated) {
      // Copy phase: view nodes with pre <= post(c) are guaranteed
      // descendants of c (Eq. (1)); no postorder comparison needed.
      size_t guaranteed = LowerBound(view, static_cast<uint64_t>(bound) + 1);
      for (; j < guaranteed; ++j) {
        ++stats->nodes_copied;
        result->push_back(view.pre[j]);
      }
    }
    for (; j < view.size() && view.pre[j] <= limit; ++j) {
      ++stats->nodes_scanned;
      if (view.post[j] < bound) {
        result->push_back(view.pre[j]);
      } else if (options.skip_mode != SkipMode::kNone) {
        break;  // Z region: no later view node in this partition matches
      }
    }
  }
}

void ViewJoinAnc(const TagView& view, const NodeSequence& kept,
                 const DocTable& doc, bool or_self, TagId tag,
                 const StaircaseOptions& options, NodeSequence* result,
                 JoinStats* stats) {
  uint64_t window_start = 0;
  for (size_t k = 0; k < kept.size(); ++k) {
    NodeId c = kept[k];
    uint32_t bound = doc.post(c);
    size_t j = LowerBound(view, window_start);
    size_t end = LowerBound(view, c);  // view nodes with pre < pre(c)
    while (j < end) {
      ++stats->nodes_scanned;
      if (view.post[j] > bound) {
        result->push_back(view.pre[j]);
        ++j;
      } else if (options.skip_mode == SkipMode::kNone) {
        ++j;
      } else {
        // The whole subtree of view.pre[j] precedes c; its descendants have
        // pre ranks <= post + level, so resume past the postorder rank.
        size_t next = LowerBound(
            view, static_cast<uint64_t>(view.post[j]) + 1);
        stats->nodes_skipped += (next > j ? next - j : 1) - 1;
        j = std::max(next, j + 1);
      }
    }
    if (or_self && doc.kind(c) == NodeKind::kElement && doc.tag(c) == tag) {
      result->push_back(c);
    }
    window_start = static_cast<uint64_t>(c) + 1;
  }
}

void ViewJoinFollowing(const TagView& view, NodeId m, const DocTable& doc,
                       const StaircaseOptions& options, NodeSequence* result,
                       JoinStats* stats) {
  uint32_t bound = doc.post(m);
  size_t j = LowerBound(view, static_cast<uint64_t>(m) + 1);
  if (options.skip_mode != SkipMode::kNone) {
    // First following node has pre > post(m); everything before is desc.
    size_t start = LowerBound(view, static_cast<uint64_t>(bound) + 1);
    stats->nodes_skipped += start > j ? start - j : 0;
    j = std::max(j, start);
  }
  bool copying = false;
  for (; j < view.size(); ++j) {
    if (copying) {
      ++stats->nodes_copied;
      result->push_back(view.pre[j]);
      continue;
    }
    ++stats->nodes_scanned;
    if (view.post[j] > bound) {
      result->push_back(view.pre[j]);
      if (options.skip_mode != SkipMode::kNone) copying = true;
    }
  }
}

void ViewJoinPreceding(const TagView& view, NodeId big, const DocTable& doc,
                       NodeSequence* result, JoinStats* stats) {
  uint32_t bound = doc.post(big);
  size_t end = LowerBound(view, big);
  for (size_t j = 0; j < end; ++j) {
    ++stats->nodes_scanned;
    if (view.post[j] < bound) result->push_back(view.pre[j]);
  }
}

}  // namespace

TagView BuildTagView(const DocTable& doc, TagId tag) {
  TagView view;
  view.tag = tag;
  const auto kinds = doc.kinds();
  const auto tags = doc.tags_column();
  const auto posts = doc.posts();
  for (size_t i = 0; i < doc.size(); ++i) {
    if (tags[i] == tag && kinds[i] == static_cast<uint8_t>(NodeKind::kElement)) {
      view.pre.push_back(static_cast<NodeId>(i));
      view.post.push_back(posts[i]);
    }
  }
  return view;
}

TagIndex::TagIndex(const DocTable& doc) {
  views_.resize(doc.tags().size());
  for (size_t t = 0; t < views_.size(); ++t) {
    views_[t].tag = static_cast<TagId>(t);
  }
  const auto kinds = doc.kinds();
  const auto tags = doc.tags_column();
  const auto posts = doc.posts();
  for (size_t i = 0; i < doc.size(); ++i) {
    if (kinds[i] == static_cast<uint8_t>(NodeKind::kElement)) {
      TagView& v = views_[tags[i]];
      v.pre.push_back(static_cast<NodeId>(i));
      v.post.push_back(posts[i]);
    }
  }
}

const TagView& TagIndex::view(TagId tag) const {
  if (tag == kNoTag || tag >= views_.size()) return empty_;
  return views_[tag];
}

uint64_t TagIndex::tag_count(TagId tag) const { return view(tag).size(); }

uint64_t TagIndex::memory_bytes() const {
  uint64_t bytes = 0;
  for (const TagView& v : views_) {
    bytes += v.pre.capacity() * sizeof(NodeId) +
             v.post.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

Result<NodeSequence> StaircaseJoinView(const DocTable& doc,
                                       const TagView& view,
                                       const NodeSequence& context, Axis axis,
                                       const StaircaseOptions& options,
                                       JoinStats* stats) {
  if (!IsStaircaseAxis(axis)) {
    return Status::Unsupported(std::string("staircase view join on axis ") +
                               std::string(AxisName(axis)));
  }
  if (!context.empty() && context.back() >= doc.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }

  NodeSequence result;
  JoinStats local;
  local.context_size = context.size();
  if (context.empty() || view.size() == 0) {
    // -or-self can still contribute selves with matching tags.
    if (IsStaircaseAxis(axis) &&
        (axis == Axis::kDescendantOrSelf || axis == Axis::kAncestorOrSelf)) {
      for (NodeId c : context) {
        if (doc.kind(c) == NodeKind::kElement && doc.tag(c) == view.tag) {
          result.push_back(c);
        }
      }
    }
    local.result_size = result.size();
    if (stats != nullptr) *stats = local;
    return result;
  }

  NodeSequence kept = PruneContext(doc, context, axis);
  local.pruned_context_size = kept.size();

  switch (axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      ViewJoinDesc(view, kept, doc, axis == Axis::kDescendantOrSelf, view.tag,
                   options, &result, &local);
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      ViewJoinAnc(view, kept, doc, axis == Axis::kAncestorOrSelf, view.tag,
                  options, &result, &local);
      break;
    case Axis::kFollowing:
      ViewJoinFollowing(view, kept.front(), doc, options, &result, &local);
      break;
    case Axis::kPreceding:
      ViewJoinPreceding(view, kept.front(), doc, &result, &local);
      break;
    default:
      return Status::Internal("unreachable");
  }

  local.result_size = result.size();
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace sj
