// Set-at-a-time evaluation of the non-staircase XPath axes.
//
// The staircase join covers the four partitioning axes; a location path
// also takes child / parent / attribute / following-sibling /
// preceding-sibling / self steps. Historically those fell back to
// per-context evaluation over the in-memory parent column
// (baselines/naive.h) -- which on the paged backend silently bypassed
// the buffer pool. This module evaluates them set-at-a-time over the
// DocAccessor cursor concept instead: one pass over the sorted context,
// duplicate-free document-order output, subtree skipping, and the
// step's node test folded into the scan so no per-node post-filter over
// resident columns remains. The kernel bodies live in core/axis_impl.h
// (internal, backend-generic); AxisCursorStep below instantiates them
// with the in-memory backend, storage::PagedAxisCursorStep with the
// buffer-pool backend.

#ifndef STAIRJOIN_CORE_AXIS_STEP_H_
#define STAIRJOIN_CORE_AXIS_STEP_H_

#include "core/axis.h"
#include "core/doc_accessor.h"
#include "core/stats.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// \brief A node test compiled against the encoding: kind byte plus an
/// optional tag code, evaluable through any DocAccessor.
///
/// The xpath layer lowers its NodeTest into this form once per step
/// (name lookups against the resident TagDictionary happen there); the
/// kernels then test candidates with at most one Kind and one Tag read
/// -- both charged to the backend.
struct AxisNodeTest {
  /// node(): every candidate passes, no column is read for the test.
  bool accept_all = true;
  /// Required kind byte when !accept_all (NodeKind, uint8_t-encoded).
  uint8_t kind = 0;
  /// When true, the candidate's tag code must equal `tag` as well.
  bool match_tag = false;
  TagId tag = kNoTag;

  /// Compiles "kind must be `k`".
  static AxisNodeTest OfKind(NodeKind k) {
    return AxisNodeTest{false, static_cast<uint8_t>(k), false, kNoTag};
  }
  /// Compiles "kind must be `k` and tag must be `t`".
  static AxisNodeTest OfKindAndTag(NodeKind k, TagId t) {
    return AxisNodeTest{false, static_cast<uint8_t>(k), true, t};
  }

  /// Evaluates the test given an already-read kind byte, reading the tag
  /// column only when needed.
  template <DocAccessor A>
  bool Matches(A& acc, uint64_t pre, uint8_t kind_byte) {
    if (accept_all) return true;
    if (kind_byte != kind) return false;
    return !match_tag || acc.Tag(pre) == tag;
  }
};

/// True for the axes AxisCursorStep evaluates (the complement of
/// IsStaircaseAxis over the supported axis set).
constexpr bool IsCursorAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kParent:
    case Axis::kAttribute:
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling:
    case Axis::kSelf:
      return true;
    default:
      return false;
  }
}

/// \brief Evaluates one non-staircase axis step set-at-a-time over the
/// in-memory DocTable columns.
///
/// `context` must be duplicate free and in document order; the result
/// is too. `test` is folded into the scan (attribute filtering follows
/// the XPath data model: attribute nodes are attribute-axis results
/// only). `stats` uses the kernels.h semantics: nodes_scanned are
/// candidate positions examined, nodes_skipped are positions jumped
/// over (subtree skipping), pruned_context_size counts the context
/// nodes that actually opened a scan after covered-context pruning.
Result<NodeSequence> AxisCursorStep(const DocTable& doc,
                                    const NodeSequence& context, Axis axis,
                                    const AxisNodeTest& test = {},
                                    JoinStats* stats = nullptr);

/// \brief Keeps the nodes of a document-order sequence that satisfy
/// `test`, reading kind/tag through the in-memory columns (the
/// set-at-a-time replacement for per-node FilterByTest loops after a
/// staircase-axis join).
NodeSequence FilterByTestSequence(const DocTable& doc,
                                  const NodeSequence& nodes,
                                  const AxisNodeTest& test);

}  // namespace sj

#endif  // STAIRJOIN_CORE_AXIS_STEP_H_
