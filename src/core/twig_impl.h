// Backend-generic holistic twig-join driver, internal.
//
// This header holds the ONE implementation of the twig operator
// (core/twig_join.h): a k-way pre-order merge of the context sequence
// (level 0) and one FragmentCursor per chain level, with per-level
// ancestor stacks for the structural checks and a leapfrog-style seek
// cascade for skipping. It is the k-ary sibling of core/fragment_impl.h
// -- every operator body exists exactly once per shape, generic over the
// storage backend (FragmentCursor + DocAccessor).
//
// Sweep invariant: streams are consumed in global pre-rank order (ties
// go to the lower level). When node v of level i is processed, level
// i-1's stack -- after popping every entry e with post(e) < post(v),
// which can never again contain a later node -- holds exactly the
// already-processed satisfied level-(i-1) nodes on v's ancestor-or-self
// path, innermost on top. That makes the axis checks O(1) against the
// top of the stack:
//
//   descendant          stack nonempty, ignoring an equal-pre self entry
//   descendant-or-self  stack nonempty
//   child               deepest strict-ancestor entry is v's parent,
//                       tested via level(v) == level(entry) + 1 (the
//                       1-byte level column; cheaper than parent pages)
//
// A satisfied node of an inner level is pushed onto its own stack; the
// final level emits to the result instead -- pre-order emission over a
// duplicate-free stream yields a sorted, duplicate-free result with NO
// intermediate node list at any level.
//
// Leapfrogging: whenever level i-1's stack is empty, no level-i node
// before the next unprocessed level-(i-1) candidate can be satisfied, so
// cursor i seeks (LowerBound + SkipTo) to that pre rank (+1 for the
// strict axes) -- the jumped slots are never touched, which on the
// paged backends means fragment pages never faulted. The bounds cascade
// through the levels in one pass, so one starved supporter fast-forwards
// the whole tail of the chain, and an exhausted supporter drains it.
//
// Error model: sticky, as everywhere else. Failed reads return 0 (and
// LowerBound returns size()), slots still advance, so the sweep
// terminates; the driver checks ok() once per cursor at the end.

#ifndef STAIRJOIN_CORE_TWIG_IMPL_H_
#define STAIRJOIN_CORE_TWIG_IMPL_H_

#include <cstdint>
#include <vector>

#include "core/doc_accessor.h"
#include "core/fragment_cursor.h"
#include "core/staircase_impl.h"
#include "core/twig_join.h"
#include "util/result.h"

namespace sj::internal {

/// A satisfied node still able to support later nodes of the level
/// below. `level` is only filled when the consuming axis is kChild.
struct TwigStackEntry {
  NodeId pre = 0;
  uint32_t post = 0;
  uint8_t level = 0;
};

/// Pops entries whose subtree ended before `post` -- they precede the
/// current node entirely and can never support it or any later node.
inline void TwigPopEnded(std::vector<TwigStackEntry>* stack, uint32_t post) {
  while (!stack->empty() && stack->back().post < post) stack->pop_back();
}

/// The holistic twig join over any backend pair (see file comment).
/// `cursors[i]` is the fragment of `levels[i]`; both have size k >= 1.
/// Cursors are borrowed and must start at slot 0 / a fresh state.
template <FragmentCursor F, DocAccessor A>
Result<NodeSequence> TwigJoinOver(const std::vector<F*>& cursors, A& acc,
                                  const NodeSequence& context,
                                  const std::vector<TwigLevel>& levels,
                                  const StaircaseOptions& options,
                                  JoinStats* stats,
                                  std::vector<TwigLevelStats>* level_stats) {
  const size_t k = cursors.size();
  if (k == 0 || levels.size() != k) {
    return Status::InvalidArgument("twig join needs one cursor per level");
  }
  for (const TwigLevel& level : levels) {
    if (!IsTwigAxis(level.axis)) {
      return Status::Unsupported(std::string("twig join on axis ") +
                                 std::string(AxisName(level.axis)));
    }
  }
  SJ_RETURN_NOT_OK(ValidateContext(acc, context));

  JoinStats local;
  local.context_size = context.size();
  // The ancestor stacks subsume Algorithm 1: a covered context node just
  // lands on the stack below its coverer and changes nothing.
  local.pruned_context_size = context.size();
  std::vector<TwigLevelStats> per_level(k);
  for (size_t i = 0; i < k; ++i) {
    per_level[i].tag = levels[i].tag;
    per_level[i].fragment_size = cursors[i]->size();
  }

  NodeSequence result;
  const bool seek = options.skip_mode != SkipMode::kNone;
  constexpr uint64_t kDone = ~uint64_t{0};

  // stacks[0] holds context nodes (always satisfied); stacks[i] holds
  // satisfied level-i nodes (1 <= i < k). Level k emits, needing no
  // stack. store_level[s]: the axis consuming stack s is kChild.
  std::vector<std::vector<TwigStackEntry>> stacks(k);
  std::vector<bool> store_level(k);
  for (size_t i = 0; i < k; ++i) {
    store_level[i] = levels[i].axis == Axis::kChild;
  }

  size_t ctx_pos = 0;
  std::vector<size_t> slot(k, 0);
  // Cached pre rank at slot[i] (kDone when exhausted), so the k-way min
  // does not re-read cursor pages per iteration.
  std::vector<uint64_t> head(k);
  for (size_t i = 0; i < k; ++i) {
    head[i] = cursors[i]->size() > 0 ? cursors[i]->Pre(0) : kDone;
  }
  if (context.empty()) {
    if (stats != nullptr) *stats = local;
    if (level_stats != nullptr) *level_stats = std::move(per_level);
    return result;
  }

  while (true) {
    if (seek) {
      // Seek cascade, top level down: an empty supporter stack bounds
      // where the next satisfiable node of this level can start.
      for (size_t i = 0; i < k; ++i) {
        if (!stacks[i].empty()) continue;
        const uint64_t floor =
            i == 0 ? (ctx_pos < context.size() ? context[ctx_pos] : kDone)
                   : head[i - 1];
        const uint64_t strict =
            levels[i].axis == Axis::kDescendantOrSelf ? 0 : 1;
        const uint64_t bound = floor == kDone ? kDone : floor + strict;
        if (head[i] == kDone || head[i] >= bound) continue;
        size_t target;
        if (bound == kDone) {
          // The supporter stream is drained: this level -- and through
          // the cascade the whole tail -- can never match again.
          target = cursors[i]->size();
        } else {
          target = cursors[i]->LowerBound(bound);
        }
        if (target > slot[i]) {
          per_level[i].slots_skipped += target - slot[i];
          cursors[i]->SkipTo(target);
          slot[i] = target;
          head[i] = target < cursors[i]->size() ? cursors[i]->Pre(target)
                                                : kDone;
        }
      }
    }
    // The final level's stream is spent: nothing can be emitted anymore,
    // whatever the inner streams still hold.
    if (head[k - 1] == kDone) break;

    // Next node in global pre order; ties go to the lower level so a
    // node shared by adjacent streams supports its own -or-self copy.
    uint64_t best =
        ctx_pos < context.size() ? context[ctx_pos] : kDone;
    size_t best_level = 0;  // 0 = context, i + 1 = cursor i
    for (size_t i = 0; i < k; ++i) {
      if (head[i] < best) {
        best = head[i];
        best_level = i + 1;
      }
    }
    if (best == kDone) break;

    acc.SkipTo(best);  // the sweep reads doc columns in pre order
    if (best_level == 0) {
      const NodeId c = context[ctx_pos++];
      const uint32_t post = acc.Post(c);
      TwigPopEnded(&stacks[0], post);
      TwigStackEntry entry{c, post, 0};
      if (store_level[0]) entry.level = acc.Level(c);
      stacks[0].push_back(entry);
      continue;
    }

    const size_t i = best_level - 1;
    const NodeId v = static_cast<NodeId>(best);
    const uint32_t post = cursors[i]->Post(slot[i]);
    ++per_level[i].slots_scanned;
    ++slot[i];
    head[i] = slot[i] < cursors[i]->size() ? cursors[i]->Pre(slot[i]) : kDone;

    std::vector<TwigStackEntry>& sup = stacks[i];
    TwigPopEnded(&sup, post);
    bool satisfied = false;
    uint8_t v_level = 0;
    bool have_level = false;
    switch (levels[i].axis) {
      case Axis::kDescendantOrSelf:
        satisfied = !sup.empty();
        break;
      case Axis::kDescendant:
        // An equal-pre entry is v itself (pushed by a lower stream this
        // iteration's tie); only entries below it are strict ancestors.
        satisfied = !sup.empty() && (sup.back().pre != v || sup.size() > 1);
        break;
      case Axis::kChild: {
        size_t n = sup.size();
        if (n > 0 && sup.back().pre == v) --n;
        if (n > 0) {
          v_level = acc.Level(v);
          have_level = true;
          // The deepest strict-ancestor entry is the only one that can
          // be the parent (ancestors form a chain, one per level).
          satisfied = static_cast<uint32_t>(sup[n - 1].level) + 1 == v_level;
        }
        break;
      }
      default:
        break;  // unreachable: IsTwigAxis was checked above
    }
    if (!satisfied) continue;
    if (i + 1 == k) {
      result.push_back(v);
      continue;
    }
    std::vector<TwigStackEntry>& own = stacks[i + 1];
    TwigPopEnded(&own, post);
    TwigStackEntry entry{v, post, 0};
    if (store_level[i + 1]) {
      entry.level = have_level ? v_level : acc.Level(v);
    }
    own.push_back(entry);
  }

  if (!acc.ok()) return acc.status();
  for (size_t i = 0; i < k; ++i) {
    if (!cursors[i]->ok()) return cursors[i]->status();
    local.nodes_scanned += per_level[i].slots_scanned;
    local.nodes_skipped += per_level[i].slots_skipped;
  }
  local.result_size = result.size();
  if (stats != nullptr) *stats = local;
  if (level_stats != nullptr) *level_stats = std::move(per_level);
  return result;
}

}  // namespace sj::internal

#endif  // STAIRJOIN_CORE_TWIG_IMPL_H_
