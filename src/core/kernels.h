// Internal scan kernels of the staircase join (Algorithms 2-4), generic
// over the storage backend (core/doc_accessor.h).
//
// This header is internal to the library: the stable entry points are
// StaircaseJoin (core/staircase_join.h), ParallelStaircaseJoin
// (core/parallel.h) and their paged twins (storage/paged_doc.h). The
// kernels are exposed here so that the join drivers, the parallel workers
// and the micro benchmarks all instantiate exactly the same loops.

#ifndef STAIRJOIN_CORE_KERNELS_H_
#define STAIRJOIN_CORE_KERNELS_H_

#include <algorithm>
#include <cstdint>

#include "core/doc_accessor.h"
#include "core/staircase_join.h"
#include "core/stats.h"
#include "encoding/doc_table.h"

namespace sj::internal {

inline constexpr uint8_t kAttrKind = static_cast<uint8_t>(NodeKind::kAttribute);

/// Shared scan state: the backend cursor plus counters.
template <DocAccessor A>
struct Scan {
  A& acc;
  bool filter_attributes;
  bool use_exact_level;
  NodeSequence* result;
  JoinStats stats;

  void Append(uint64_t pre) {
    if (!filter_attributes || acc.Kind(pre) != kAttrKind) {
      result->push_back(static_cast<NodeId>(pre));
    }
  }

  /// Appends a context node itself (-or-self variants). Self nodes are
  /// exempt from attribute filtering: only *axis* results exclude
  /// attributes; the self node is part of the result by definition.
  void AppendSelf(NodeId c) { result->push_back(c); }
};

// --- descendant -------------------------------------------------------------

/// Algorithm 2's scanpartition with theta = '<' (descendant): scans
/// [pre1, pre2] (inclusive) against `post_bound`.
template <DocAccessor A>
void ScanPartitionDescBasic(Scan<A>& s, uint64_t pre1, uint64_t pre2,
                            uint32_t post_bound) {
  for (uint64_t i = pre1; i <= pre2; ++i) {
    ++s.stats.nodes_scanned;
    if (s.acc.Post(i) < post_bound) s.Append(i);
  }
}

/// Algorithm 3: terminates at the first node outside the boundary; the
/// remainder of the partition is an empty Z region (paper Fig. 7b/9).
template <DocAccessor A>
void ScanPartitionDescSkip(Scan<A>& s, uint64_t pre1, uint64_t pre2,
                           uint32_t post_bound) {
  for (uint64_t i = pre1; i <= pre2; ++i) {
    ++s.stats.nodes_scanned;
    if (s.acc.Post(i) < post_bound) {
      s.Append(i);
    } else {
      s.stats.nodes_skipped += pre2 - i;  // nodes i+1 .. pre2 never touched
      s.acc.SkipTo(pre2 + 1);
      return;
    }
  }
}

/// Algorithm 4: estimation-based skipping. The first post(c) - pre(c)
/// nodes after context node c are guaranteed descendants (Eq. (1) with
/// level >= 0); they are copied without postorder comparisons -- on a
/// paged backend that means without reading postorder pages at all. At
/// most h candidates remain for the scan phase.
template <DocAccessor A>
void ScanPartitionDescEstimated(Scan<A>& s, uint64_t pre1, uint64_t pre2,
                                uint32_t post_bound) {
  // `post_bound` is post(c) and pre1 is pre(c)+1, so the copy phase covers
  // pre ranks [pre(c)+1, post(c)], clamped to the partition.
  uint64_t estimate = std::min<uint64_t>(pre2, post_bound);
  uint64_t i = pre1;
  if (s.filter_attributes) {
    for (; i <= estimate; ++i) {
      ++s.stats.nodes_copied;
      if (s.acc.Kind(i) != kAttrKind) {
        s.result->push_back(static_cast<NodeId>(i));
      }
    }
  } else if (estimate >= i) {
    // Branch-free bulk copy: the cache-bound fast path of Section 4.2/4.3.
    // No column is read at all, so this is backend-independent.
    size_t count = static_cast<size_t>(estimate - i + 1);
    size_t old = s.result->size();
    s.result->resize(old + count);
    NodeId* out = s.result->data() + old;
    for (size_t k = 0; k < count; ++k) {
      out[k] = static_cast<NodeId>(i + k);
    }
    s.stats.nodes_copied += count;
    i = estimate + 1;
    s.acc.SkipTo(i);
  }
  for (; i <= pre2; ++i) {
    ++s.stats.nodes_scanned;
    if (s.acc.Post(i) < post_bound) {
      s.Append(i);
    } else {
      s.stats.nodes_skipped += pre2 - i;
      s.acc.SkipTo(pre2 + 1);
      return;
    }
  }
}

template <DocAccessor A>
void ScanPartitionDesc(Scan<A>& s, SkipMode mode, uint64_t pre1,
                       uint64_t pre2, uint32_t post_bound) {
  if (pre1 > pre2) return;
  switch (mode) {
    case SkipMode::kNone:
      ScanPartitionDescBasic(s, pre1, pre2, post_bound);
      break;
    case SkipMode::kSkip:
      ScanPartitionDescSkip(s, pre1, pre2, post_bound);
      break;
    case SkipMode::kEstimated:
      ScanPartitionDescEstimated(s, pre1, pre2, post_bound);
      break;
  }
}

// --- ancestor ---------------------------------------------------------------

/// Algorithm 2's scanpartition with theta = '>' (ancestor). Attribute
/// nodes never pass (they close before any later node opens), so no kind
/// filtering is needed on this path.
template <DocAccessor A>
void ScanPartitionAncBasic(Scan<A>& s, uint64_t pre1, uint64_t pre2,
                           uint32_t post_bound) {
  for (uint64_t i = pre1; i <= pre2; ++i) {
    ++s.stats.nodes_scanned;
    if (s.acc.Post(i) > post_bound) {
      s.result->push_back(static_cast<NodeId>(i));
    }
  }
}

/// Section 3.3 skipping for ancestor: a node v below the boundary is in
/// the preceding region of the context node, and so is v's entire subtree;
/// Eq. (1) estimates its size as post(v) - pre(v) (exact with the level
/// term, maximally h too small without it).
template <DocAccessor A>
void ScanPartitionAncSkip(Scan<A>& s, uint64_t pre1, uint64_t pre2,
                          uint32_t post_bound) {
  uint64_t i = pre1;
  while (i <= pre2) {
    ++s.stats.nodes_scanned;
    uint32_t post = s.acc.Post(i);
    if (post > post_bound) {
      s.result->push_back(static_cast<NodeId>(i));
      ++i;
    } else {
      uint64_t subtree = post >= i ? post - i : 0;
      if (s.use_exact_level) subtree = post - i + s.acc.Level(i);
      uint64_t next = std::min(i + subtree + 1, pre2 + 1);
      s.stats.nodes_skipped += next - i - 1;
      if (next > i + 1) s.acc.SkipTo(next);  // may leap whole pages
      i = next;
    }
  }
}

template <DocAccessor A>
void ScanPartitionAnc(Scan<A>& s, SkipMode mode, uint64_t pre1,
                      uint64_t pre2, uint32_t post_bound) {
  if (pre1 > pre2) return;
  if (mode == SkipMode::kNone) {
    ScanPartitionAncBasic(s, pre1, pre2, post_bound);
  } else {
    ScanPartitionAncSkip(s, pre1, pre2, post_bound);
  }
}

}  // namespace sj::internal

#endif  // STAIRJOIN_CORE_KERNELS_H_
