#include "core/twig_join.h"

#include <memory>

#include "core/doc_accessor.h"
#include "core/fragment_cursor.h"
#include "core/twig_impl.h"

namespace sj {

// A shim over the backend-generic twig join (core/twig_impl.h)
// instantiated with the in-memory cursors.
Result<NodeSequence> TwigJoin(const DocTable& doc, const TagIndex& tags,
                              const NodeSequence& context,
                              const std::vector<TwigLevel>& levels,
                              const StaircaseOptions& options,
                              JoinStats* stats,
                              std::vector<TwigLevelStats>* level_stats) {
  std::vector<std::unique_ptr<MemoryFragmentCursor>> owned;
  std::vector<MemoryFragmentCursor*> cursors;
  owned.reserve(levels.size());
  cursors.reserve(levels.size());
  for (const TwigLevel& level : levels) {
    owned.push_back(
        std::make_unique<MemoryFragmentCursor>(tags.view(level.tag)));
    cursors.push_back(owned.back().get());
  }
  MemoryDocAccessor acc(doc);
  return internal::TwigJoinOver(cursors, acc, context, levels, options, stats,
                                level_stats);
}

}  // namespace sj
