#include "core/parallel.h"

#include <algorithm>

#include "core/doc_accessor.h"
#include "core/staircase_impl.h"

namespace sj {

namespace internal {

ChunkQueue::ChunkQueue(size_t total, size_t chunks)
    : total_(total),
      per_((total + (chunks > 0 ? chunks : 1) - 1) /
           (chunks > 0 ? chunks : 1)),
      chunk_count_(per_ > 0 ? (total + per_ - 1) / per_ : 0) {}

bool ChunkQueue::Next(size_t* index, size_t* lo, size_t* hi) {
  MutexLock lock(mu_);
  if (next_ >= chunk_count_) return false;
  *index = next_++;
  *lo = *index * per_;
  *hi = std::min(total_, *lo + per_);
  return true;
}

}  // namespace internal

Result<NodeSequence> ParallelStaircaseJoin(const DocTable& doc,
                                           const NodeSequence& context,
                                           Axis axis,
                                           const StaircaseOptions& options,
                                           unsigned num_threads,
                                           JoinStats* stats) {
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  if ((!desc && !anc) || num_threads < 2 || context.size() < 2) {
    return StaircaseJoin(doc, context, axis, options, stats);
  }
  return internal::ParallelStaircaseJoinOver(
      [&doc] { return MemoryDocAccessor(doc); }, context, axis, options,
      num_threads, stats);
}

}  // namespace sj
