#include "core/parallel.h"

#include "core/doc_accessor.h"
#include "core/staircase_impl.h"

namespace sj {

Result<NodeSequence> ParallelStaircaseJoin(const DocTable& doc,
                                           const NodeSequence& context,
                                           Axis axis,
                                           const StaircaseOptions& options,
                                           unsigned num_threads,
                                           JoinStats* stats) {
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  if ((!desc && !anc) || num_threads < 2 || context.size() < 2) {
    return StaircaseJoin(doc, context, axis, options, stats);
  }
  return internal::ParallelStaircaseJoinOver(
      [&doc] { return MemoryDocAccessor(doc); }, context, axis, options,
      num_threads, stats);
}

}  // namespace sj
