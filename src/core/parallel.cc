#include "core/parallel.h"

#include <algorithm>
#include <iterator>
#include <thread>
#include <vector>

#include "core/kernels.h"

namespace sj {
namespace {

using internal::Scan;
using internal::ScanPartitionAnc;
using internal::ScanPartitionDesc;

/// Scans the descendant partitions of kept[lo, hi); partition k ends just
/// before kept[k+1] (kept[hi] belongs to the next worker; the global last
/// partition ends at the document end).
void WorkerDesc(const DocTable& doc, const NodeSequence& kept, size_t lo,
                size_t hi, bool or_self, const StaircaseOptions& options,
                NodeSequence* result, JoinStats* stats) {
  Scan s{doc.posts().data(),   doc.kinds().data(),
         doc.levels().data(),  !options.keep_attributes,
         options.use_exact_level, result,
         JoinStats{}};
  for (size_t k = lo; k < hi; ++k) {
    NodeId c = kept[k];
    uint64_t end = k + 1 < kept.size() ? kept[k + 1] - 1 : doc.size() - 1;
    ++s.stats.pruned_context_size;
    if (or_self) s.AppendSelf(c);
    ScanPartitionDesc(s, options.skip_mode, static_cast<uint64_t>(c) + 1, end,
                      doc.post(c));
  }
  s.stats.result_size = result->size();
  *stats = s.stats;
}

/// Scans the ancestor partitions of kept[lo, hi); partition k starts just
/// after kept[k-1] (the global first partition starts at the document
/// begin).
void WorkerAnc(const DocTable& doc, const NodeSequence& kept, size_t lo,
               size_t hi, bool or_self, const StaircaseOptions& options,
               NodeSequence* result, JoinStats* stats) {
  Scan s{doc.posts().data(),   doc.kinds().data(),
         doc.levels().data(),  !options.keep_attributes,
         options.use_exact_level, result,
         JoinStats{}};
  for (size_t k = lo; k < hi; ++k) {
    NodeId c = kept[k];
    uint64_t start = k > 0 ? static_cast<uint64_t>(kept[k - 1]) + 1 : 0;
    ++s.stats.pruned_context_size;
    if (c > 0) {
      ScanPartitionAnc(s, options.skip_mode, start, c - 1, doc.post(c));
    }
    if (or_self) s.AppendSelf(c);
  }
  s.stats.result_size = result->size();
  *stats = s.stats;
}

}  // namespace

Result<NodeSequence> ParallelStaircaseJoin(const DocTable& doc,
                                           const NodeSequence& context,
                                           Axis axis,
                                           const StaircaseOptions& options,
                                           unsigned num_threads,
                                           JoinStats* stats) {
  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool anc = axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
  if ((!desc && !anc) || num_threads < 2 || context.size() < 2) {
    return StaircaseJoin(doc, context, axis, options, stats);
  }
  if (context.back() >= doc.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }

  NodeSequence kept = PruneContext(doc, context, axis);
  unsigned workers = num_threads;
  if (workers > kept.size()) workers = static_cast<unsigned>(kept.size());

  std::vector<NodeSequence> results(workers);
  std::vector<JoinStats> worker_stats(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const bool or_self =
      axis == Axis::kDescendantOrSelf || axis == Axis::kAncestorOrSelf;
  const size_t per = (kept.size() + workers - 1) / workers;
  for (unsigned t = 0; t < workers; ++t) {
    size_t lo = static_cast<size_t>(t) * per;
    size_t hi = std::min(kept.size(), lo + per);
    if (lo >= hi) break;
    threads.emplace_back([&, lo, hi, t] {
      if (desc) {
        WorkerDesc(doc, kept, lo, hi, or_self, options, &results[t],
                   &worker_stats[t]);
      } else {
        WorkerAnc(doc, kept, lo, hi, or_self, options, &results[t],
                  &worker_stats[t]);
      }
    });
  }
  for (auto& th : threads) th.join();

  size_t total = 0;
  for (const auto& r : results) total += r.size();
  NodeSequence result;
  result.reserve(total);
  for (auto& r : results) {
    result.insert(result.end(), r.begin(), r.end());
  }

  // Pruned attribute context nodes of a descendant-or-self step are only
  // reachable through partition scans, which filter attributes; merge those
  // selves back in (same post-pass as the serial join).
  if (axis == Axis::kDescendantOrSelf && !options.keep_attributes) {
    NodeSequence lost;
    for (NodeId c : context) {
      if (doc.kind(c) == NodeKind::kAttribute &&
          !std::binary_search(result.begin(), result.end(), c)) {
        lost.push_back(c);
      }
    }
    if (!lost.empty()) {
      NodeSequence merged;
      merged.reserve(result.size() + lost.size());
      std::merge(result.begin(), result.end(), lost.begin(), lost.end(),
                 std::back_inserter(merged));
      result = std::move(merged);
    }
  }

  if (stats != nullptr) {
    JoinStats merged;
    for (const auto& ws : worker_stats) merged.MergeFrom(ws);
    merged.context_size = context.size();
    merged.result_size = result.size();
    *stats = merged;
  }
  return result;
}

}  // namespace sj
