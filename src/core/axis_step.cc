#include "core/axis_step.h"

#include "core/axis_impl.h"

namespace sj {

Result<NodeSequence> AxisCursorStep(const DocTable& doc,
                                    const NodeSequence& context, Axis axis,
                                    const AxisNodeTest& test,
                                    JoinStats* stats) {
  MemoryDocAccessor acc(doc);
  return internal::AxisStepOver(acc, context, axis, test, stats);
}

NodeSequence FilterByTestSequence(const DocTable& doc,
                                  const NodeSequence& nodes,
                                  const AxisNodeTest& test) {
  MemoryDocAccessor acc(doc);
  return internal::FilterSequenceOver(acc, nodes, test);
}

}  // namespace sj
