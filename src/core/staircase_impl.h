// Backend-generic staircase-join drivers (Algorithms 1-4), internal.
//
// This header holds the ONE implementation of the paper's algorithms:
// fused pruning (Algorithm 1), the partition loop (Algorithm 2) over the
// scan kernels of core/kernels.h (Algorithms 2-4), and the degenerate
// following/preceding region queries (Section 3.1). Everything is
// parameterized over a DocAccessor (core/doc_accessor.h); the public
// entry points instantiate it with the in-memory backend
// (core/staircase_join.cc, core/parallel.cc) and with the paged backend
// (storage/paged_doc.cc).

#ifndef STAIRJOIN_CORE_STAIRCASE_IMPL_H_
#define STAIRJOIN_CORE_STAIRCASE_IMPL_H_

#include <algorithm>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

#include "core/doc_accessor.h"
#include "core/kernels.h"
#include "core/parallel.h"
#include "core/staircase_join.h"
#include "util/result.h"

namespace sj::internal {

template <DocAccessor A>
Status ValidateContext(const A& acc, const NodeSequence& context) {
  if (context.empty()) return Status::OK();
  if (context.back() >= acc.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }
  return Status::OK();
}

/// Algorithm 1 and its axis duals as a separate pass (Section 3.1); the
/// join drivers below prune on the fly, this exists for the ablation bench
/// and for the parallel driver's partition assignment.
template <DocAccessor A>
NodeSequence PruneContextOver(A& acc, const NodeSequence& context, Axis axis) {
  NodeSequence kept;
  if (context.empty()) return kept;
  switch (axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      // Algorithm 1: keep nodes with strictly growing postorder ranks; a
      // later node with a smaller rank lies inside the previous survivor.
      uint32_t prev = 0;
      bool first = true;
      for (NodeId c : context) {
        uint32_t post = acc.Post(c);
        if (first || post > prev) {
          kept.push_back(c);
          prev = post;
          first = false;
        }
      }
      return kept;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Dual of Algorithm 1: drop nodes that are ancestors of a later
      // context node (scan right-to-left keeping postorder minima).
      uint32_t prev = 0;
      bool first = true;
      for (size_t k = context.size(); k-- > 0;) {
        NodeId c = context[k];
        uint32_t post = acc.Post(c);
        if (first || post < prev) {
          kept.push_back(c);
          prev = post;
          first = false;
        }
      }
      std::reverse(kept.begin(), kept.end());
      return kept;
    }
    case Axis::kFollowing: {
      // All context nodes except the one with the minimum postorder rank
      // are covered (Section 3.1, via the empty S region of Fig. 7a).
      NodeId m = context.front();
      uint32_t best = acc.Post(m);
      for (NodeId c : context) {
        uint32_t post = acc.Post(c);
        if (post < best) {
          best = post;
          m = c;
        }
      }
      kept.push_back(m);
      return kept;
    }
    case Axis::kPreceding: {
      // Dual: only the maximum preorder rank survives.
      kept.push_back(context.back());
      return kept;
    }
    default:
      return context;  // non-staircase axes: nothing to prune
  }
}

/// Descendant / descendant-or-self driver with fused (on-the-fly) pruning:
/// a context node whose postorder rank does not exceed the pending
/// boundary is a descendant of the pending context node and is dropped
/// (Algorithm 1 inlined into Algorithm 2's partition loop).
template <DocAccessor A>
void JoinDesc(const NodeSequence& context, bool or_self, SkipMode mode,
              Scan<A>& s) {
  NodeId pending = context.front();
  uint32_t pending_post = s.acc.Post(pending);
  ++s.stats.pruned_context_size;
  for (size_t k = 1; k < context.size(); ++k) {
    NodeId c = context[k];
    uint32_t c_post = s.acc.Post(c);
    if (c_post < pending_post) continue;  // pruned: c inside pending
    ++s.stats.pruned_context_size;
    if (or_self) s.AppendSelf(pending);
    ScanPartitionDesc(s, mode, static_cast<uint64_t>(pending) + 1, c - 1,
                      pending_post);
    pending = c;
    pending_post = c_post;
  }
  if (or_self) s.AppendSelf(pending);
  ScanPartitionDesc(s, mode, static_cast<uint64_t>(pending) + 1,
                    s.acc.size() - 1, pending_post);
}

/// Ancestor / ancestor-or-self driver with fused pruning: when the next
/// context node is a descendant of the pending one, the pending node's
/// ancestor set is covered and the pending node is dropped; its partition
/// simply extends (descendants of a node are contiguous in pre order, so
/// one-step lookahead suffices).
template <DocAccessor A>
void JoinAnc(const NodeSequence& context, bool or_self, SkipMode mode,
             Scan<A>& s) {
  uint64_t window_start = 0;
  NodeId pending = context.front();
  uint32_t pending_post = s.acc.Post(pending);
  for (size_t k = 1; k < context.size(); ++k) {
    NodeId c = context[k];
    uint32_t c_post = s.acc.Post(c);
    if (pending_post > c_post) {  // pending is an ancestor of c: pruned
      pending = c;
      pending_post = c_post;
      continue;
    }
    ++s.stats.pruned_context_size;
    if (pending > 0) {
      ScanPartitionAnc(s, mode, window_start, pending - 1, pending_post);
    }
    if (or_self) s.AppendSelf(pending);
    window_start = static_cast<uint64_t>(pending) + 1;
    pending = c;
    pending_post = c_post;
  }
  ++s.stats.pruned_context_size;
  if (pending > 0) {
    ScanPartitionAnc(s, mode, window_start, pending - 1, pending_post);
  }
  if (or_self) s.AppendSelf(pending);
}

/// Following: pruning reduces the context to the node with the minimum
/// postorder rank; the join degenerates to a single region query
/// (Section 3.1). The first following node has pre rank
/// post(m) + level(m) + 1, so after at most h scanned descendants the
/// remainder is a pure copy.
template <DocAccessor A>
void JoinFollowing(const NodeSequence& context, SkipMode mode, Scan<A>& s) {
  NodeId m = context.front();
  uint32_t best = s.acc.Post(m);
  for (NodeId c : context) {
    uint32_t post = s.acc.Post(c);
    if (post < best) {
      best = post;
      m = c;
    }
  }
  ++s.stats.pruned_context_size;
  const uint64_t n = s.acc.size();
  if (mode == SkipMode::kNone) {
    // Basic region query: scan everything right of the context node.
    for (uint64_t j = static_cast<uint64_t>(m) + 1; j < n; ++j) {
      ++s.stats.nodes_scanned;
      if (s.acc.Post(j) > best) s.Append(j);
    }
    return;
  }
  uint64_t i = std::max<uint64_t>(static_cast<uint64_t>(m) + 1,
                                  static_cast<uint64_t>(best) + 1);
  if (i > static_cast<uint64_t>(m) + 1) {
    s.stats.nodes_skipped += i - (static_cast<uint64_t>(m) + 1);
    s.acc.SkipTo(i);
  }
  // Scan phase: at most level(m) <= h descendants remain before the first
  // following node.
  for (; i < n; ++i) {
    ++s.stats.nodes_scanned;
    if (s.acc.Post(i) > best) {
      s.Append(i);
      ++i;
      break;
    }
  }
  // Copy phase: every node from the first following node onwards follows m.
  for (; i < n; ++i) {
    ++s.stats.nodes_copied;
    s.Append(i);
  }
}

/// Preceding: pruning keeps only the node with the maximum preorder rank
/// (the last one, the context being pre-sorted). Everything left of it is
/// preceding except its <= h ancestors, so the plain scan already touches
/// only pre(M) nodes.
template <DocAccessor A>
void JoinPreceding(const NodeSequence& context, Scan<A>& s) {
  NodeId big = context.back();
  ++s.stats.pruned_context_size;
  uint32_t bound = s.acc.Post(big);
  for (uint64_t i = 0; i < big; ++i) {
    ++s.stats.nodes_scanned;
    if (s.acc.Post(i) < bound) s.Append(i);
  }
}

/// Self nodes are part of an -or-self result even when they are attribute
/// nodes, but a *pruned* attribute context node is only reachable through
/// another context node's partition scan, which filters attributes. Merge
/// such selves back in (rare: attribute context nodes nested inside
/// another context node's subtree).
template <DocAccessor A>
void MergeLostAttributeSelves(A& acc, const NodeSequence& context,
                              NodeSequence& result) {
  NodeSequence lost;
  for (NodeId c : context) {
    if (acc.Kind(c) == kAttrKind &&
        !std::binary_search(result.begin(), result.end(), c)) {
      lost.push_back(c);
    }
  }
  if (!lost.empty()) {
    NodeSequence merged;
    merged.reserve(result.size() + lost.size());
    std::merge(result.begin(), result.end(), lost.begin(), lost.end(),
               std::back_inserter(merged));
    result = std::move(merged);
  }
}

/// The staircase join over any backend: validation, pruning, partition
/// scans, -or-self repair, stats. The public StaircaseJoin and
/// PagedStaircaseJoin are thin shims around this function.
template <DocAccessor A>
Result<NodeSequence> StaircaseJoinOver(A& acc, const NodeSequence& context,
                                       Axis axis,
                                       const StaircaseOptions& options,
                                       JoinStats* stats) {
  if (!IsStaircaseAxis(axis)) {
    return Status::Unsupported(std::string("staircase join on axis ") +
                               std::string(AxisName(axis)));
  }
  SJ_RETURN_NOT_OK(ValidateContext(acc, context));

  NodeSequence result;
  JoinStats local;
  local.context_size = context.size();
  if (context.empty() || acc.size() == 0) {
    if (stats != nullptr) *stats = local;
    return result;
  }

  // A separate pruning pass when fused pruning is disabled (the fused loop
  // below then finds nothing left to prune; see the ablation bench).
  const NodeSequence* ctx = &context;
  NodeSequence prepruned;
  if (!options.prune_on_the_fly) {
    prepruned = PruneContextOver(acc, context, axis);
    ctx = &prepruned;
  }

  Scan<A> s{acc, !options.keep_attributes, options.use_exact_level, &result,
            local};

  switch (axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      if (ctx->size() == 1) {
        // Eq. (1) lower-bound reservation for single-context steps:
        // size >= post - pre (at most h short; exactness would need a
        // Level read, which on a paged backend faults a page this join
        // never otherwise touches). Signed + clamped: post < pre for
        // deep leaves, and a failed backend reads 0.
        NodeId c = ctx->front();
        int64_t hint = static_cast<int64_t>(acc.Post(c)) - c + 1;
        if (hint > 1) result.reserve(static_cast<size_t>(hint));
      }
      JoinDesc(*ctx, axis == Axis::kDescendantOrSelf, options.skip_mode, s);
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      JoinAnc(*ctx, axis == Axis::kAncestorOrSelf, options.skip_mode, s);
      break;
    case Axis::kFollowing:
      JoinFollowing(*ctx, options.skip_mode, s);
      break;
    case Axis::kPreceding:
      JoinPreceding(*ctx, s);
      break;
    default:
      return Status::Internal("unreachable");
  }

  if (axis == Axis::kDescendantOrSelf && !options.keep_attributes) {
    MergeLostAttributeSelves(acc, context, result);
  }

  if (!acc.ok()) return acc.status();

  s.stats.result_size = result.size();
  if (stats != nullptr) *stats = s.stats;
  return result;
}

// --- parallel partitioned driver --------------------------------------------

/// Scans the descendant partitions of kept[lo, hi); partition k ends just
/// before kept[k+1] (kept[hi] belongs to the next worker; the global last
/// partition ends at the document end).
template <DocAccessor A>
void ParallelWorkerDesc(A& acc, const NodeSequence& kept, size_t lo,
                        size_t hi, bool or_self,
                        const StaircaseOptions& options, NodeSequence* result,
                        JoinStats* stats) {
  Scan<A> s{acc, !options.keep_attributes, options.use_exact_level, result,
            JoinStats{}};
  for (size_t k = lo; k < hi; ++k) {
    NodeId c = kept[k];
    uint64_t end = k + 1 < kept.size() ? kept[k + 1] - 1 : acc.size() - 1;
    ++s.stats.pruned_context_size;
    if (or_self) s.AppendSelf(c);
    ScanPartitionDesc(s, options.skip_mode, static_cast<uint64_t>(c) + 1, end,
                      acc.Post(c));
  }
  s.stats.result_size = result->size();
  *stats = s.stats;
}

/// Scans the ancestor partitions of kept[lo, hi); partition k starts just
/// after kept[k-1] (the global first partition starts at the document
/// begin).
template <DocAccessor A>
void ParallelWorkerAnc(A& acc, const NodeSequence& kept, size_t lo, size_t hi,
                       bool or_self, const StaircaseOptions& options,
                       NodeSequence* result, JoinStats* stats) {
  Scan<A> s{acc, !options.keep_attributes, options.use_exact_level, result,
            JoinStats{}};
  for (size_t k = lo; k < hi; ++k) {
    NodeId c = kept[k];
    uint64_t start = k > 0 ? static_cast<uint64_t>(kept[k - 1]) + 1 : 0;
    ++s.stats.pruned_context_size;
    if (c > 0) {
      ScanPartitionAnc(s, options.skip_mode, start, c - 1, acc.Post(c));
    }
    if (or_self) s.AppendSelf(c);
  }
  s.stats.result_size = result->size();
  *stats = s.stats;
}

/// The partitioned parallel staircase join over any backend: Section 3.2's
/// observation that the staircase partitions are disjoint and jointly
/// cover all candidates. `make_accessor` produces one independent cursor
/// per worker (for a paged backend each cursor holds its own pinned
/// pages over a shared, thread-safe buffer pool).
///
/// Only called for the descendant/ancestor (+ -or-self) axes with
/// num_threads >= 2 and |context| >= 2; the public wrappers delegate the
/// remaining cases to the serial join.
template <typename Factory>
Result<NodeSequence> ParallelStaircaseJoinOver(Factory&& make_accessor,
                                               const NodeSequence& context,
                                               Axis axis,
                                               const StaircaseOptions& options,
                                               unsigned num_threads,
                                               JoinStats* stats) {
  auto main_acc = make_accessor();
  SJ_RETURN_NOT_OK(ValidateContext(main_acc, context));

  NodeSequence kept = PruneContextOver(main_acc, context, axis);
  if (!main_acc.ok()) return main_acc.status();
  unsigned workers = num_threads;
  if (workers > kept.size()) workers = static_cast<unsigned>(kept.size());

  const bool desc =
      axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf;
  const bool or_self =
      axis == Axis::kDescendantOrSelf || axis == Axis::kAncestorOrSelf;

  // Dynamic load balancing: the context is cut into several chunks per
  // worker and each worker claims the next one from the mutex-guarded
  // queue when it finishes its current chunk (ChunkQueue, core/parallel.h)
  // -- a static one-range-per-worker split would leave workers idle
  // behind the largest partition. Per-chunk results concatenate in chunk
  // order, so the merged result is identical to the serial join's.
  ChunkQueue queue(kept.size(), static_cast<size_t>(workers) *
                                    kChunksPerWorker);
  std::vector<NodeSequence> results(queue.chunk_count());
  std::vector<JoinStats> worker_stats(workers);
  std::vector<Status> worker_status(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      auto acc = make_accessor();
      size_t chunk, lo, hi;
      while (acc.ok() && queue.Next(&chunk, &lo, &hi)) {
        JoinStats chunk_stats;
        if (desc) {
          ParallelWorkerDesc(acc, kept, lo, hi, or_self, options,
                             &results[chunk], &chunk_stats);
        } else {
          ParallelWorkerAnc(acc, kept, lo, hi, or_self, options,
                            &results[chunk], &chunk_stats);
        }
        worker_stats[t].MergeFrom(chunk_stats);
      }
      worker_status[t] = acc.status();
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& ws : worker_status) SJ_RETURN_NOT_OK(ws);

  size_t total = 0;
  for (const auto& r : results) total += r.size();
  NodeSequence result;
  result.reserve(total);
  for (auto& r : results) {
    result.insert(result.end(), r.begin(), r.end());
  }

  if (axis == Axis::kDescendantOrSelf && !options.keep_attributes) {
    MergeLostAttributeSelves(main_acc, context, result);
  }
  if (!main_acc.ok()) return main_acc.status();

  if (stats != nullptr) {
    JoinStats merged;
    for (const auto& ws : worker_stats) merged.MergeFrom(ws);
    merged.context_size = context.size();
    merged.result_size = result.size();
    merged.workers = threads.size() > 1 ? threads.size() : 1;
    *stats = merged;
  }
  return result;
}

}  // namespace sj::internal

#endif  // STAIRJOIN_CORE_STAIRCASE_IMPL_H_
