// Operator statistics.
//
// Three of the six panels of paper Fig. 11 plot counters rather than time
// (duplicates avoided, nodes scanned, result sizes), so every join/baseline
// operator in this library reports a JoinStats.

#ifndef STAIRJOIN_CORE_STATS_H_
#define STAIRJOIN_CORE_STATS_H_

#include <cstdint>

namespace sj {

/// \brief Counters filled by staircase join and the baseline operators.
struct JoinStats {
  /// Context sequence length before pruning.
  uint64_t context_size = 0;
  /// Context nodes remaining after pruning (== partitions scanned).
  uint64_t pruned_context_size = 0;
  /// Nodes touched with a postorder comparison (scan phases).
  uint64_t nodes_scanned = 0;
  /// Nodes copied without comparison (estimation-based copy phase).
  uint64_t nodes_copied = 0;
  /// Nodes never touched thanks to skipping (pre positions jumped over).
  uint64_t nodes_skipped = 0;
  /// Result sequence length.
  uint64_t result_size = 0;
  /// Candidate tuples produced before duplicate elimination (naive / SQL /
  /// MPMGJN baselines; staircase join never produces duplicates).
  uint64_t candidates_produced = 0;
  /// Duplicates removed by the final unique operator (baselines only).
  uint64_t duplicates_removed = 0;
  /// B+-tree index entries touched (SQL baseline only).
  uint64_t index_entries_scanned = 0;
  /// Worker threads that actually scanned partitions (1 = serial; the
  /// parallel drivers overwrite it with the spawned count, so a silent
  /// fallback to the serial join is visible to EXPLAIN).
  uint64_t workers = 1;

  /// Total nodes accessed (the y-axis of paper Fig. 11(c)).
  uint64_t nodes_accessed() const { return nodes_scanned + nodes_copied; }

  /// Merges counters (used by the parallel join). `workers` is not
  /// summed; the parallel driver sets it explicitly.
  void MergeFrom(const JoinStats& other) {
    context_size += other.context_size;
    pruned_context_size += other.pruned_context_size;
    nodes_scanned += other.nodes_scanned;
    nodes_copied += other.nodes_copied;
    nodes_skipped += other.nodes_skipped;
    result_size += other.result_size;
    candidates_produced += other.candidates_produced;
    duplicates_removed += other.duplicates_removed;
    index_entries_scanned += other.index_entries_scanned;
  }
};

}  // namespace sj

#endif  // STAIRJOIN_CORE_STATS_H_
