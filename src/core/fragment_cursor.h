// The storage-backend cursor abstraction of the *fragment* staircase join.
//
// A tag fragment is the document projected to the element nodes of one
// tag, pre-sorted (core/tag_view.h). The Section 4.4 pushdown algorithms
// only ever touch a fragment through slot-addressed pre/post reads plus
// binary searches on the pre column ("where does doc pre rank p land in
// this fragment?") and forward jumps. That access pattern is captured
// here as the FragmentCursor concept so the fragment join bodies
// (core/fragment_impl.h) exist exactly once, generic over the backend:
//
//   * MemoryFragmentCursor (below) reads the TagView vectors directly;
//     every method inlines to an array access or a std::lower_bound, so
//     the instantiated join compiles to the historical in-memory loops;
//   * storage::PagedFragmentCursor reads per-fragment pre/post column
//     pages through a BufferPool, so pushdown turns "nodes never
//     touched" into fragment pages never read.
//
// Contract: reads are valid for slots in [0, size()); LowerBound(pre)
// returns the first slot whose pre rank is >= pre (size() if none). A
// backend whose reads can fail records the first error, returns zeros
// (resp. size() from LowerBound) from then on, and the driver checks
// ok() once per join. Joins announce forward jumps via SkipTo(slot)
// *before* resuming reads at `slot`, which lets a paged backend release
// the pages the jump leaves behind.

#ifndef STAIRJOIN_CORE_FRAGMENT_CURSOR_H_
#define STAIRJOIN_CORE_FRAGMENT_CURSOR_H_

#include <algorithm>
#include <concepts>
#include <cstdint>

#include "core/tag_view.h"
#include "util/status.h"

namespace sj {

/// \brief Slot-cursor access to one pre-sorted tag fragment (see file
/// comment).
template <typename C>
concept FragmentCursor = requires(C c, const C cc, size_t slot, uint64_t pre) {
  { cc.size() } -> std::convertible_to<size_t>;
  { c.Pre(slot) } -> std::convertible_to<NodeId>;
  { c.Post(slot) } -> std::convertible_to<uint32_t>;
  { c.LowerBound(pre) } -> std::convertible_to<size_t>;
  { c.SkipTo(slot) };
  { cc.ok() } -> std::convertible_to<bool>;
  { cc.status() } -> std::convertible_to<Status>;
};

/// \brief FragmentCursor over the in-memory TagView vectors.
///
/// Borrows the view's columns; the view must outlive the cursor.
/// Infallible: ok() is always true.
class MemoryFragmentCursor {
 public:
  explicit MemoryFragmentCursor(const TagView& view)
      : pre_(view.pre.data()),
        post_(view.post.data()),
        size_(view.pre.size()) {}

  size_t size() const { return size_; }
  NodeId Pre(size_t slot) const { return pre_[slot]; }
  uint32_t Post(size_t slot) const { return post_[slot]; }
  size_t LowerBound(uint64_t pre) const {
    return static_cast<size_t>(std::lower_bound(pre_, pre_ + size_, pre) -
                               pre_);
  }
  void SkipTo(size_t) const {}  // random access: jumps cost nothing
  bool ok() const { return true; }
  Status status() const { return Status::OK(); }

 private:
  const NodeId* pre_;
  const uint32_t* post_;
  size_t size_;
};

static_assert(FragmentCursor<MemoryFragmentCursor>);

}  // namespace sj

#endif  // STAIRJOIN_CORE_FRAGMENT_CURSOR_H_
