// The paper's algebra surface (Section 4.4):
//
//   r  = root(doc)
//   s1 = nametest(staircasejoin_desc(doc, r), "increase")
//   s2 = nametest(staircasejoin_anc(doc, s1), "bidder")
//
// This header provides exactly that vocabulary as thin, checked wrappers
// over the core operators, so code written against the paper reads
// one-to-one. The staircasejoin_* functions abort-free propagate Status
// like the rest of the library.

#ifndef STAIRJOIN_CORE_ALGEBRA_H_
#define STAIRJOIN_CORE_ALGEBRA_H_

#include <string_view>

#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj::algebra {

/// root(doc): the singleton context holding the document element.
NodeSequence root(const DocTable& doc);

/// nametest(nodes, "tag"): keeps the element nodes named `tag`.
NodeSequence nametest(const DocTable& doc, const NodeSequence& nodes,
                      std::string_view tag);

/// nametest(doc, "tag"): the whole document filtered by tag -- the form
/// the name-test pushdown rewrites into (Section 4.4):
///   staircasejoin_anc(nametest(doc, n), cs).
/// Materializes a TagView; prefer a cached TagIndex for repeated use.
TagView nametest(const DocTable& doc, std::string_view tag);

/// staircasejoin_desc(doc, context): the descendant-axis staircase join.
Result<NodeSequence> staircasejoin_desc(const DocTable& doc,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options = {},
                                        JoinStats* stats = nullptr);

/// staircasejoin_anc(doc, context): the ancestor-axis staircase join.
Result<NodeSequence> staircasejoin_anc(const DocTable& doc,
                                       const NodeSequence& context,
                                       const StaircaseOptions& options = {},
                                       JoinStats* stats = nullptr);

/// staircasejoin_foll(doc, context): the following-axis region query.
Result<NodeSequence> staircasejoin_foll(const DocTable& doc,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options = {},
                                        JoinStats* stats = nullptr);

/// staircasejoin_prec(doc, context): the preceding-axis region query.
Result<NodeSequence> staircasejoin_prec(const DocTable& doc,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options = {},
                                        JoinStats* stats = nullptr);

/// staircasejoin_desc over a tag fragment (the pushdown form).
Result<NodeSequence> staircasejoin_desc(const DocTable& doc,
                                        const TagView& view,
                                        const NodeSequence& context,
                                        const StaircaseOptions& options = {},
                                        JoinStats* stats = nullptr);

/// staircasejoin_anc over a tag fragment (the pushdown form).
Result<NodeSequence> staircasejoin_anc(const DocTable& doc,
                                       const TagView& view,
                                       const NodeSequence& context,
                                       const StaircaseOptions& options = {},
                                       JoinStats* stats = nullptr);

}  // namespace sj::algebra

#endif  // STAIRJOIN_CORE_ALGEBRA_H_
