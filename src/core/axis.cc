#include "core/axis.h"

namespace sj {

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kFollowing:
      return "following";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kParent:
      return "parent";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kSelf:
      return "self";
  }
  return "unknown";
}

}  // namespace sj
