// XPath axes.

#ifndef STAIRJOIN_CORE_AXIS_H_
#define STAIRJOIN_CORE_AXIS_H_

#include <string_view>

namespace sj {

/// All XPath axes of the accelerator (paper Section 2). The staircase join
/// itself evaluates the four partitioning axes (+ their -or-self variants);
/// the remaining axes are derived in the xpath module.
enum class Axis : uint8_t {
  kAncestor,
  kAncestorOrSelf,
  kAttribute,
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kFollowing,
  kFollowingSibling,
  kParent,
  kPreceding,
  kPrecedingSibling,
  kSelf,
  // The namespace axis is not supported (no namespace processing).
};

/// XPath spelling of an axis, e.g. "ancestor-or-self".
std::string_view AxisName(Axis axis);

/// True for the four partitioning axes and their -or-self variants, i.e.
/// the axes the staircase join evaluates directly.
constexpr bool IsStaircaseAxis(Axis axis) {
  switch (axis) {
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kFollowing:
    case Axis::kPreceding:
      return true;
    default:
      return false;
  }
}

}  // namespace sj

#endif  // STAIRJOIN_CORE_AXIS_H_
