// Parallel partitioned staircase join (in-memory backend shim).
//
// Section 3.2 of the paper observes that the staircase partitions of the
// pre/post plane are disjoint and jointly cover all candidate nodes, which
// "naturally leads to a parallel XPath execution strategy": each worker
// scans a contiguous run of partitions and the per-worker results
// concatenate -- still duplicate-free and in document order.
//
// The partitioned driver itself is backend-generic
// (core/staircase_impl.h); this entry point instantiates it with
// MemoryDocAccessor, storage/paged_doc.h's ParallelPagedStaircaseJoin
// with the buffer-pool cursor.

#ifndef STAIRJOIN_CORE_PARALLEL_H_
#define STAIRJOIN_CORE_PARALLEL_H_

#include <cstddef>

#include "core/staircase_join.h"
#include "util/thread_annotations.h"

namespace sj {

namespace internal {

/// \brief The parallel join's work queue: contiguous index chunks of the
/// pruned context, claimed by workers under a mutex.
///
/// The partitions of one document are wildly skewed (one context node
/// under the root may own most of the document), so a static
/// one-range-per-worker split leaves workers idle behind the largest
/// partition. Instead the driver cuts the context into several chunks
/// per worker and each worker claims the next unclaimed chunk here when
/// it finishes its current one. Chunks are handed out in index order;
/// per-chunk results concatenate in chunk order, so the merged result is
/// identical to the serial join's.
///
/// The cursor position is guarded by `mu` (compile-time enforced via
/// Clang Thread Safety Analysis); a worker whose Next returns false
/// terminates -- the queue only ever drains.
class ChunkQueue {
 public:
  /// Queue over `total` items cut into at most `chunks` contiguous
  /// chunks of near-equal size (at least one item each).
  ChunkQueue(size_t total, size_t chunks);

  /// Claims the next chunk as [*lo, *hi) with chunk index *index;
  /// returns false when the queue is drained.
  bool Next(size_t* index, size_t* lo, size_t* hi) SJ_EXCLUDES(mu_);

  /// Number of chunks the queue will hand out in total.
  size_t chunk_count() const { return chunk_count_; }

 private:
  const size_t total_;
  const size_t per_;          ///< items per chunk (last chunk may be short)
  const size_t chunk_count_;  ///< ceil(total / per)
  Mutex mu_;
  size_t next_ SJ_GUARDED_BY(mu_) = 0;  ///< next unclaimed chunk index
};

/// Chunks handed out per worker: enough granularity to rebalance skewed
/// partitions, few enough that queue claims stay off the profile.
inline constexpr size_t kChunksPerWorker = 4;

}  // namespace internal

/// \brief StaircaseJoin distributed over `num_threads` workers.
///
/// Semantics and result are identical to StaircaseJoin (same options
/// contract). Supported for the descendant/ancestor (+ -or-self) axes;
/// following/preceding degenerate to one region query after pruning and are
/// delegated to the serial join. num_threads < 2 also delegates.
Result<NodeSequence> ParallelStaircaseJoin(const DocTable& doc,
                                           const NodeSequence& context,
                                           Axis axis,
                                           const StaircaseOptions& options,
                                           unsigned num_threads,
                                           JoinStats* stats = nullptr);

}  // namespace sj

#endif  // STAIRJOIN_CORE_PARALLEL_H_
