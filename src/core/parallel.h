// Parallel partitioned staircase join (in-memory backend shim).
//
// Section 3.2 of the paper observes that the staircase partitions of the
// pre/post plane are disjoint and jointly cover all candidate nodes, which
// "naturally leads to a parallel XPath execution strategy": each worker
// scans a contiguous run of partitions and the per-worker results
// concatenate -- still duplicate-free and in document order.
//
// The partitioned driver itself is backend-generic
// (core/staircase_impl.h); this entry point instantiates it with
// MemoryDocAccessor, storage/paged_doc.h's ParallelPagedStaircaseJoin
// with the buffer-pool cursor.

#ifndef STAIRJOIN_CORE_PARALLEL_H_
#define STAIRJOIN_CORE_PARALLEL_H_

#include "core/staircase_join.h"

namespace sj {

/// \brief StaircaseJoin distributed over `num_threads` workers.
///
/// Semantics and result are identical to StaircaseJoin (same options
/// contract). Supported for the descendant/ancestor (+ -or-self) axes;
/// following/preceding degenerate to one region query after pruning and are
/// delegated to the serial join. num_threads < 2 also delegates.
Result<NodeSequence> ParallelStaircaseJoin(const DocTable& doc,
                                           const NodeSequence& context,
                                           Axis axis,
                                           const StaircaseOptions& options,
                                           unsigned num_threads,
                                           JoinStats* stats = nullptr);

}  // namespace sj

#endif  // STAIRJOIN_CORE_PARALLEL_H_
