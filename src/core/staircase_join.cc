#include "core/staircase_join.h"

#include <algorithm>
#include <iterator>

#include "core/kernels.h"

namespace sj {
namespace {

using internal::Scan;
using internal::ScanPartitionAnc;
using internal::ScanPartitionDesc;

Status ValidateContext(const DocTable& doc, const NodeSequence& context) {
  if (context.empty()) return Status::OK();
  if (context.back() >= doc.size()) {
    return Status::InvalidArgument("context node out of range");
  }
  if (!IsDocumentOrder(context)) {
    return Status::InvalidArgument(
        "context must be duplicate-free and in document order");
  }
  return Status::OK();
}

/// Descendant / descendant-or-self driver with fused (on-the-fly) pruning:
/// a context node whose postorder rank does not exceed the pending
/// boundary is a descendant of the pending context node and is dropped
/// (Algorithm 1 inlined into Algorithm 2's partition loop).
void JoinDesc(const DocTable& doc, const NodeSequence& context, bool or_self,
              SkipMode mode, Scan& s) {
  const uint32_t* post = s.post;
  NodeId pending = context.front();
  ++s.stats.pruned_context_size;
  for (size_t k = 1; k < context.size(); ++k) {
    NodeId c = context[k];
    if (post[c] < post[pending]) continue;  // pruned: c inside pending
    ++s.stats.pruned_context_size;
    if (or_self) s.AppendSelf(pending);
    ScanPartitionDesc(s, mode, static_cast<uint64_t>(pending) + 1, c - 1,
                      post[pending]);
    pending = c;
  }
  if (or_self) s.AppendSelf(pending);
  ScanPartitionDesc(s, mode, static_cast<uint64_t>(pending) + 1,
                    doc.size() - 1, post[pending]);
}

/// Ancestor / ancestor-or-self driver with fused pruning: when the next
/// context node is a descendant of the pending one, the pending node's
/// ancestor set is covered and the pending node is dropped; its partition
/// simply extends (descendants of a node are contiguous in pre order, so
/// one-step lookahead suffices).
void JoinAnc(const NodeSequence& context, bool or_self, SkipMode mode,
             Scan& s) {
  const uint32_t* post = s.post;
  uint64_t window_start = 0;
  NodeId pending = context.front();
  for (size_t k = 1; k < context.size(); ++k) {
    NodeId c = context[k];
    if (post[pending] > post[c]) {  // pending is an ancestor of c: pruned
      pending = c;
      continue;
    }
    ++s.stats.pruned_context_size;
    if (pending > 0) {
      ScanPartitionAnc(s, mode, window_start, pending - 1, post[pending]);
    }
    if (or_self) s.AppendSelf(pending);
    window_start = static_cast<uint64_t>(pending) + 1;
    pending = c;
  }
  ++s.stats.pruned_context_size;
  if (pending > 0) {
    ScanPartitionAnc(s, mode, window_start, pending - 1, post[pending]);
  }
  if (or_self) s.AppendSelf(pending);
}

/// Following: pruning reduces the context to the node with the minimum
/// postorder rank; the join degenerates to a single region query
/// (Section 3.1). The first following node has pre rank
/// post(m) + level(m) + 1, so after at most h scanned descendants the
/// remainder is a pure copy.
void JoinFollowing(const DocTable& doc, const NodeSequence& context,
                   SkipMode mode, Scan& s) {
  NodeId m = context.front();
  uint32_t best = s.post[m];
  for (NodeId c : context) {
    if (s.post[c] < best) {
      best = s.post[c];
      m = c;
    }
  }
  ++s.stats.pruned_context_size;
  const uint64_t n = doc.size();
  if (mode == SkipMode::kNone) {
    // Basic region query: scan everything right of the context node.
    for (uint64_t j = static_cast<uint64_t>(m) + 1; j < n; ++j) {
      ++s.stats.nodes_scanned;
      if (s.post[j] > best) s.Append(j);
    }
    return;
  }
  uint64_t i = std::max<uint64_t>(static_cast<uint64_t>(m) + 1,
                                  static_cast<uint64_t>(best) + 1);
  s.stats.nodes_skipped += i - (static_cast<uint64_t>(m) + 1);
  // Scan phase: at most level(m) <= h descendants remain before the first
  // following node.
  for (; i < n; ++i) {
    ++s.stats.nodes_scanned;
    if (s.post[i] > best) {
      s.Append(i);
      ++i;
      break;
    }
  }
  // Copy phase: every node from the first following node onwards follows m.
  for (; i < n; ++i) {
    ++s.stats.nodes_copied;
    s.Append(i);
  }
}

/// Preceding: pruning keeps only the node with the maximum preorder rank
/// (the last one, the context being pre-sorted). Everything left of it is
/// preceding except its <= h ancestors, so the plain scan already touches
/// only pre(M) nodes.
void JoinPreceding(const NodeSequence& context, Scan& s) {
  NodeId big = context.back();
  ++s.stats.pruned_context_size;
  uint32_t bound = s.post[big];
  for (uint64_t i = 0; i < big; ++i) {
    ++s.stats.nodes_scanned;
    if (s.post[i] < bound) s.Append(i);
  }
}

}  // namespace

NodeSequence PruneContext(const DocTable& doc, const NodeSequence& context,
                          Axis axis) {
  NodeSequence kept;
  if (context.empty()) return kept;
  const auto posts = doc.posts();
  switch (axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      // Algorithm 1: keep nodes with strictly growing postorder ranks; a
      // later node with a smaller rank lies inside the previous survivor.
      uint32_t prev = 0;
      bool first = true;
      for (NodeId c : context) {
        if (first || posts[c] > prev) {
          kept.push_back(c);
          prev = posts[c];
          first = false;
        }
      }
      return kept;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Dual of Algorithm 1: drop nodes that are ancestors of a later
      // context node (scan right-to-left keeping postorder minima).
      uint32_t prev = 0;
      bool first = true;
      for (size_t k = context.size(); k-- > 0;) {
        NodeId c = context[k];
        if (first || posts[c] < prev) {
          kept.push_back(c);
          prev = posts[c];
          first = false;
        }
      }
      std::reverse(kept.begin(), kept.end());
      return kept;
    }
    case Axis::kFollowing: {
      // All context nodes except the one with the minimum postorder rank
      // are covered (Section 3.1, via the empty S region of Fig. 7a).
      NodeId m = context.front();
      for (NodeId c : context) {
        if (posts[c] < posts[m]) m = c;
      }
      kept.push_back(m);
      return kept;
    }
    case Axis::kPreceding: {
      // Dual: only the maximum preorder rank survives.
      kept.push_back(context.back());
      return kept;
    }
    default:
      return context;  // non-staircase axes: nothing to prune
  }
}

Result<NodeSequence> StaircaseJoin(const DocTable& doc,
                                   const NodeSequence& context, Axis axis,
                                   const StaircaseOptions& options,
                                   JoinStats* stats) {
  if (!IsStaircaseAxis(axis)) {
    return Status::Unsupported(std::string("staircase join on axis ") +
                               std::string(AxisName(axis)));
  }
  SJ_RETURN_NOT_OK(ValidateContext(doc, context));

  NodeSequence result;
  JoinStats local;
  local.context_size = context.size();
  if (context.empty() || doc.empty()) {
    if (stats != nullptr) *stats = local;
    return result;
  }

  // A separate pruning pass when fused pruning is disabled (the fused loop
  // below then finds nothing left to prune; see the ablation bench).
  const NodeSequence* ctx = &context;
  NodeSequence prepruned;
  if (!options.prune_on_the_fly) {
    prepruned = PruneContext(doc, context, axis);
    ctx = &prepruned;
  }

  Scan s{doc.posts().data(),   doc.kinds().data(),
         doc.levels().data(),  !options.keep_attributes,
         options.use_exact_level, &result,
         local};

  switch (axis) {
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      if (ctx->size() == 1) {  // exact reservation for single-context steps
        result.reserve(doc.subtree_size(ctx->front()) + 1);
      }
      JoinDesc(doc, *ctx, axis == Axis::kDescendantOrSelf, options.skip_mode,
               s);
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      JoinAnc(*ctx, axis == Axis::kAncestorOrSelf, options.skip_mode, s);
      break;
    case Axis::kFollowing:
      JoinFollowing(doc, *ctx, options.skip_mode, s);
      break;
    case Axis::kPreceding:
      JoinPreceding(*ctx, s);
      break;
    default:
      return Status::Internal("unreachable");
  }

  // Self nodes are part of an -or-self result even when they are attribute
  // nodes, but a *pruned* attribute context node is only reachable through
  // another context node's partition scan, which filters attributes. Merge
  // such selves back in (rare: attribute context nodes nested inside
  // another context node's subtree).
  if (axis == Axis::kDescendantOrSelf && !options.keep_attributes) {
    NodeSequence lost;
    for (NodeId c : context) {
      if (doc.kind(c) == NodeKind::kAttribute &&
          !std::binary_search(result.begin(), result.end(), c)) {
        lost.push_back(c);
      }
    }
    if (!lost.empty()) {
      NodeSequence merged;
      merged.reserve(result.size() + lost.size());
      std::merge(result.begin(), result.end(), lost.begin(), lost.end(),
                 std::back_inserter(merged));
      result = std::move(merged);
    }
  }

  s.stats.result_size = result.size();
  if (stats != nullptr) *stats = s.stats;
  return result;
}

}  // namespace sj
