#include "core/staircase_join.h"

#include "core/doc_accessor.h"
#include "core/staircase_impl.h"

namespace sj {

NodeSequence PruneContext(const DocTable& doc, const NodeSequence& context,
                          Axis axis) {
  MemoryDocAccessor acc(doc);
  return internal::PruneContextOver(acc, context, axis);
}

Result<NodeSequence> StaircaseJoin(const DocTable& doc,
                                   const NodeSequence& context, Axis axis,
                                   const StaircaseOptions& options,
                                   JoinStats* stats) {
  MemoryDocAccessor acc(doc);
  return internal::StaircaseJoinOver(acc, context, axis, options, stats);
}

}  // namespace sj
