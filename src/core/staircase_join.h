// The staircase join (paper Section 3/4).
//
// A staircase join evaluates an XPath axis step for an entire context node
// sequence with ONE sequential scan of (the relevant part of) the document
// table and one scan of the context:
//
//   * the context is pruned to a proper staircase (Section 3.1),
//   * each staircase partition is scanned with a dynamic range predicate
//     against its context node's postorder rank (Section 3.2, Algorithm 2),
//   * empty-region analysis ends partition scans early -- "skipping"
//     (Section 3.3, Algorithm 3), touching no more than
//     |result| + |context| nodes for descendant,
//   * Eq. (1) splits descendant partitions into a comparison-free copy
//     phase and a <= h node scan phase -- "estimation-based skipping"
//     (Section 4.2, Algorithm 4).
//
// Results are always duplicate-free and in document order; no post-
// processing is needed to meet the XPath semantics.

#ifndef STAIRJOIN_CORE_STAIRCASE_JOIN_H_
#define STAIRJOIN_CORE_STAIRCASE_JOIN_H_

#include "core/axis.h"
#include "core/stats.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// How aggressively the partition scans exploit empty regions.
enum class SkipMode : uint8_t {
  /// Algorithm 2: scan every node of every partition.
  kNone,
  /// Algorithm 3: stop a partition at the first node outside the boundary
  /// (descendant), or jump over the subtree of an out-of-boundary node
  /// (ancestor).
  kSkip,
  /// Algorithm 4: like kSkip, plus the Eq. (1)-based comparison-free copy
  /// phase for descendant partitions. (For ancestor this equals kSkip; the
  /// paper defines the copy phase for descendant only.)
  kEstimated,
};

/// Staircase join configuration.
struct StaircaseOptions {
  SkipMode skip_mode = SkipMode::kEstimated;
  /// Prune the context during the join (Section 3.2: "staircase join is
  /// easily adapted to do pruning on-the-fly, thus saving a separate scan
  /// over the context table"). When false, a separate pruning pass runs
  /// first (the two are observationally equivalent; see the ablation bench).
  bool prune_on_the_fly = true;
  /// Keep attribute nodes in the result. XPath axis semantics exclude them
  /// (the library default); region queries over the raw plane keep them.
  bool keep_attributes = false;
  /// Use the exact node level when estimating subtree sizes instead of the
  /// paper's 0 <= level <= h bounds (the footnote 5 alternative encoding).
  /// Affects only ancestor-axis skip distances; results are identical.
  bool use_exact_level = false;
};

/// \brief Removes context nodes whose axis region is covered by another
/// context node's region (paper Algorithm 1 and Section 3.1).
///
/// `context` must be duplicate-free and in document order. For kDescendant/
/// kDescendantOrSelf the outermost nodes survive; for kAncestor/
/// kAncestorOrSelf the innermost; kFollowing keeps only the node with the
/// minimum postorder rank; kPreceding only the maximum preorder rank.
/// After pruning, surviving nodes pairwise relate on preceding/following
/// (descendant case) resp. ancestor/descendant (following/preceding case).
NodeSequence PruneContext(const DocTable& doc, const NodeSequence& context,
                          Axis axis);

/// \brief Evaluates an axis step for a context sequence via staircase join.
///
/// \param doc      the encoded document
/// \param context  node sequence in document order, duplicate free
/// \param axis     one of the staircase axes (IsStaircaseAxis)
/// \param options  skipping / pruning configuration
/// \param stats    optional operator counters (may be null)
/// \returns the step result in document order, duplicate free
///
/// Errors: InvalidArgument for unsorted/duplicated context or node ids out
/// of range; Unsupported for non-staircase axes.
Result<NodeSequence> StaircaseJoin(const DocTable& doc,
                                   const NodeSequence& context, Axis axis,
                                   const StaircaseOptions& options = {},
                                   JoinStats* stats = nullptr);

}  // namespace sj

#endif  // STAIRJOIN_CORE_STAIRCASE_JOIN_H_
