// Holistic twig join: a run of name-test descendant/child steps as ONE
// k-way merge over per-tag fragment cursors.
//
// The step-at-a-time evaluator materializes every intermediate context of
// a chain like /site//open_auction//bidder//increase -- exactly the
// blowup paper Fig. 11 measures. The twig join instead merges the k
// pre-sorted tag fragments (core/tag_view.h) and the context sequence in
// one global pre-order sweep: per-level ancestor stacks decide the
// structural (descendant vs child) relation in O(1) amortized per node,
// and a leapfrog-style seek cascade advances the least-supported cursor
// past regions that cannot contain matches instead of scanning them --
// the Leapfrog Triejoin idea transplanted onto the pre/post plane. No
// intermediate node list is ever built; only the final level emits.
//
// One backend-generic implementation lives in core/twig_impl.h; this
// header holds the shared plan/stats types and the in-memory shim. The
// buffer-pool twins are storage::PagedTwigJoin (storage/paged_tags.h)
// and storage::CompressedTwigJoin (storage/compressed_tags.h).

#ifndef STAIRJOIN_CORE_TWIG_JOIN_H_
#define STAIRJOIN_CORE_TWIG_JOIN_H_

#include <vector>

#include "core/staircase_join.h"
#include "core/tag_view.h"
#include "encoding/doc_table.h"
#include "util/result.h"

namespace sj {

/// True for the axes a twig level may carry. The twig join evaluates
/// downward chains only: child and descendant(-or-self). (Upward axes
/// would need the dual merge direction; they stay step-at-a-time.)
inline bool IsTwigAxis(Axis axis) {
  return axis == Axis::kChild || axis == Axis::kDescendant ||
         axis == Axis::kDescendantOrSelf;
}

/// \brief One level of a twig chain: `axis::tag` relative to the level
/// above (level 0 is the context sequence).
///
/// `tag` may be kNoTag (a never-interned name): its fragment is empty,
/// so the join returns the empty sequence in O(k) -- the same
/// short-circuit the single-step evaluator applies to unknown tags.
struct TwigLevel {
  Axis axis = Axis::kDescendant;
  TagId tag = kNoTag;
};

/// \brief Per-cursor counters of one twig join, for EXPLAIN's
/// "cursor skips" report. "Slot" means fragment slot, as in
/// core/fragment_impl.h.
struct TwigLevelStats {
  TagId tag = kNoTag;
  /// Total slots of this level's fragment.
  uint64_t fragment_size = 0;
  /// Slots touched with a postorder comparison.
  uint64_t slots_scanned = 0;
  /// Slots the leapfrog seeks jumped over (never touched).
  uint64_t slots_skipped = 0;
};

/// \brief Holistic twig join over the in-memory tag fragments.
///
/// Evaluates context/levels[0]/levels[1]/.../levels[k-1] in one merge;
/// the result contains the final level's matches only, in document
/// order, duplicate free. Every level's axis must satisfy IsTwigAxis.
/// JoinStats keep the kernels.h semantics with "node" meaning "fragment
/// slot" (summed over the k cursors; `pruned_context_size` equals
/// `context_size` -- the ancestor stacks subsume pruning). A thin shim
/// over the backend-generic body (core/twig_impl.h) instantiated with
/// MemoryFragmentCursor; `options.skip_mode == kNone` disables the seek
/// cascade (every stream is scanned end to end), any other mode enables
/// it.
Result<NodeSequence> TwigJoin(const DocTable& doc, const TagIndex& tags,
                              const NodeSequence& context,
                              const std::vector<TwigLevel>& levels,
                              const StaircaseOptions& options = {},
                              JoinStats* stats = nullptr,
                              std::vector<TwigLevelStats>* level_stats =
                                  nullptr);

}  // namespace sj

#endif  // STAIRJOIN_CORE_TWIG_JOIN_H_
